//! Dependency-free JSON for the whole workspace.
//!
//! The build environment has no crates.io access, so the workspace carries
//! its own JSON layer instead of `serde`/`serde_json`. This module is the
//! single implementation shared by the graph wire formats here, the `tgp`
//! CLI and the `tgp-service` HTTP server:
//!
//! * [`Value`] — a JSON document (objects preserve key order),
//! * [`Value::parse`] — a recursive-descent parser with a hard recursion
//!   depth limit, suitable for untrusted input (it returns errors, never
//!   panics),
//! * [`Value::pretty`] / `Display` — pretty and compact writers,
//! * [`json!`](macro@crate::json) — literal construction macro (nested literals are written
//!   as nested `json!` calls),
//! * [`ToJson`] / [`FromJson`] — conversions for the graph types, always
//!   funnelled through the validating constructors so a decoded graph
//!   upholds every structural invariant.
//!
//! # Wire formats
//!
//! The shapes match what the previous `serde` derives produced, so
//! documents written by earlier versions still parse:
//!
//! ```text
//! PathGraph     {"node_weights": [u64…], "edge_weights": [u64…]}
//! Tree          {"node_weights": [u64…], "edges": [{"a": i, "b": j, "weight": w}…]}
//! ProcessGraph  {"node_weights": [u64…], "edges": [{"a": i, "b": j, "weight": w}…]}
//! CutSet        {"edges": [usize…]}
//! Segment       {"start": i, "end": j, "weight": w}
//! ```

use std::fmt;

use crate::{
    CutSet, EdgeId, NodeId, PathGraph, ProcessEdge, ProcessGraph, Segment, Tree, TreeEdge, Weight,
};

/// Maximum nesting depth [`Value::parse`] accepts. Deeper documents are
/// rejected with an error instead of risking stack exhaustion on
/// untrusted input.
pub const MAX_DEPTH: usize = 128;

/// A JSON number: unsigned, signed or floating point.
///
/// Integers keep full `u64`/`i64` fidelity (weights span the whole `u64`
/// range); floats compare only with floats, mirroring `serde_json`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A float (any number written with a fraction or exponent).
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::UInt(a), Number::UInt(b)) => a == b,
            (Number::Int(a), Number::Int(b)) => a == b,
            (Number::UInt(a), Number::Int(b)) | (Number::Int(b), Number::UInt(a)) => {
                b >= 0 && a == b as u64
            }
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => false,
        }
    }
}

/// A JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved and duplicate keys keep the last
    /// occurrence (lookup scans from the back).
    Object(Vec<(String, Value)>),
}

/// A parse or decode failure, with a byte offset when it came from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input, if the error arose while parsing text.
    pub offset: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// `true` when parsing was stopped by the caller's check callback
    /// ([`Value::parse_with_check`]) rather than by malformed input.
    pub interrupted: bool,
}

impl JsonError {
    /// A decode error not tied to a text position.
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError {
            offset: None,
            message: message.into(),
            interrupted: false,
        }
    }

    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset: Some(offset),
            message: message.into(),
            interrupted: false,
        }
    }

    fn interrupted_at(offset: usize) -> Self {
        JsonError {
            offset: Some(offset),
            message: "parsing interrupted".to_string(),
            interrupted: true,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input, trailing garbage, or
    /// nesting deeper than [`MAX_DEPTH`]. Never panics, whatever the
    /// input.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        Self::parse_inner(text, None)
    }

    /// Parses a JSON document cooperatively: `check` is polled every
    /// [`CHECK_STRIDE`] values and parsing aborts (with an error whose
    /// `interrupted` flag is set) as soon as it returns `true`. Lets a
    /// server stop burning CPU on a multi-megabyte body whose deadline
    /// has already expired; the callback is cheap enough that a parse of
    /// millions of scalars polls it only a few hundred times.
    ///
    /// # Errors
    ///
    /// As [`Value::parse`], plus the interruption case above.
    pub fn parse_with_check(
        text: &str,
        check: &mut dyn FnMut() -> bool,
    ) -> Result<Value, JsonError> {
        Self::parse_inner(text, Some(check))
    }

    fn parse_inner(
        text: &str,
        check: Option<&mut dyn FnMut() -> bool>,
    ) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            check,
            countdown: CHECK_STRIDE,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at(
                p.pos,
                "trailing characters after JSON value".to_string(),
            ));
        }
        Ok(v)
    }

    /// The value under `key`, if this is an object containing it.
    /// Duplicate keys resolve to the last occurrence.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::UInt(u)) => Some(*u),
            Value::Number(Number::Int(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::UInt(u)) => i64::try_from(*u).ok(),
            Value::Number(Number::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::UInt(u)) => Some(*u as f64),
            Value::Number(Number::Int(i)) => Some(*i as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                use fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    /// Compact (no whitespace) JSON encoding.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(Number::UInt(u)) => write!(f, "{u}"),
            Value::Number(Number::Int(i)) => write!(f, "{i}"),
            Value::Number(Number::Float(x)) => {
                if x.is_finite() {
                    // Keep floats recognizable as floats on the wire.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN; encode as null like serde_json.
                    f.write_str("null")
                }
            }
            Value::String(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_escaped(&mut buf, k);
                    f.write_str(&buf)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// `value["key"]` — returns [`Value::Null`] for missing keys or
/// non-objects, mirroring `serde_json`.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` — returns [`Value::Null`] out of bounds or for non-arrays.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::UInt(v as u64))
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::UInt(v as u64))
                } else {
                    Value::Number(Number::Int(v as i64))
                }
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Value`] from a literal.
///
/// Supports `json!(null)`, `json!(expr)`, `json!([a, b, …])` and
/// `json!({ "key": value, … })` where every element/value is an
/// expression convertible via `Into<Value>`. Nested array/object
/// *literals* are written as nested `json!` calls:
/// `json!({"inner": json!([1, 2])})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::json::Value::Array(vec![ $( $crate::json::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::json::Value::Object(vec![
            $( (($key).to_string(), $crate::json::Value::from($val)) ),*
        ])
    };
    ($other:expr) => { $crate::json::Value::from($other) };
}

/// Values parsed between two polls of a [`Value::parse_with_check`]
/// callback. Small enough that an expired deadline stops a huge parse
/// within microseconds, large enough that the callback (typically an
/// `Instant::now()` comparison) stays invisible in profiles.
pub const CHECK_STRIDE: u32 = 4096;

struct Parser<'a, 'c> {
    bytes: &'a [u8],
    pos: usize,
    /// Cooperative interruption callback, polled every [`CHECK_STRIDE`]
    /// values; `None` parses straight through.
    check: Option<&'c mut dyn FnMut() -> bool>,
    countdown: u32,
}

impl<'a, 'c> Parser<'a, 'c> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at(
                self.pos,
                format!("nesting deeper than {MAX_DEPTH}"),
            ));
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = CHECK_STRIDE;
            if let Some(check) = self.check.as_mut() {
                if check() {
                    return Err(JsonError::interrupted_at(self.pos));
                }
            }
        }
        match self.peek() {
            None => Err(JsonError::at(self.pos, "unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::at(
                self.pos,
                format!("unexpected character {:?}", other as char),
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, format!("expected {word:?}")))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(JsonError::at(self.pos, "invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::at(
                        self.pos,
                        "unescaped control character in string",
                    ));
                }
                Some(_) => {
                    // Copy one UTF-8 character (input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = rest
                        .get(..len)
                        .ok_or_else(|| JsonError::at(self.pos, "truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| JsonError::at(self.pos, "invalid UTF-8 in string"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`),
    /// combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(c)
                        .ok_or_else(|| JsonError::at(self.pos, "invalid surrogate pair"));
                }
            }
            return Err(JsonError::at(self.pos, "unpaired surrogate in \\u escape"));
        }
        char::from_u32(first).ok_or_else(|| JsonError::at(self.pos, "invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| JsonError::at(self.pos, "truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| JsonError::at(self.pos, "invalid hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part (JSON forbids leading zeros like "01").
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::at(self.pos, "invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(
                    self.pos,
                    "expected digit after decimal point",
                ));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(self.pos, "expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(if i >= 0 {
                        Number::UInt(i as u64)
                    } else {
                        Number::Int(i)
                    }));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
            // Integer out of 64-bit range: fall through to float.
        }
        let f: f64 = text
            .parse()
            .map_err(|_| JsonError::at(start, "number out of range"))?;
        if f.is_finite() {
            Ok(Value::Number(Number::Float(f)))
        } else {
            Err(JsonError::at(start, "number out of range"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Types with a canonical JSON encoding.
pub trait ToJson {
    /// Encodes `self` as a [`Value`].
    fn to_json(&self) -> Value;
}

/// Types decodable from JSON through their validating constructors.
pub trait FromJson: Sized {
    /// Decodes from a [`Value`], re-validating every structural
    /// invariant.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first shape or invariant
    /// violation.
    fn from_json(value: &Value) -> Result<Self, JsonError>;
}

fn field<'v>(value: &'v Value, key: &str, ty: &str) -> Result<&'v Value, JsonError> {
    if value.as_object().is_none() {
        return Err(JsonError::msg(format!("expected a JSON object for {ty}")));
    }
    value
        .get(key)
        .ok_or_else(|| JsonError::msg(format!("{ty}: missing field {key:?}")))
}

fn weight_vec(value: &Value, key: &str, ty: &str) -> Result<Vec<Weight>, JsonError> {
    let items = field(value, key, ty)?
        .as_array()
        .ok_or_else(|| JsonError::msg(format!("{ty}: {key:?} must be an array")))?;
    items
        .iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_u64().map(Weight::new).ok_or_else(|| {
                JsonError::msg(format!("{ty}: {key:?}[{i}] must be a non-negative integer"))
            })
        })
        .collect()
}

impl ToJson for Weight {
    fn to_json(&self) -> Value {
        Value::from(self.get())
    }
}

impl FromJson for Weight {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_u64()
            .map(Weight::new)
            .ok_or_else(|| JsonError::msg("weight must be a non-negative integer"))
    }
}

impl ToJson for NodeId {
    fn to_json(&self) -> Value {
        Value::from(self.index())
    }
}

impl FromJson for NodeId {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let raw = value
            .as_u64()
            .ok_or_else(|| JsonError::msg("node id must be a non-negative integer"))?;
        usize::try_from(raw)
            .map(NodeId::new)
            .map_err(|_| JsonError::msg("node id out of range"))
    }
}

impl ToJson for EdgeId {
    fn to_json(&self) -> Value {
        Value::from(self.index())
    }
}

impl FromJson for EdgeId {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let raw = value
            .as_u64()
            .ok_or_else(|| JsonError::msg("edge id must be a non-negative integer"))?;
        usize::try_from(raw)
            .map(EdgeId::new)
            .map_err(|_| JsonError::msg("edge id out of range"))
    }
}

impl ToJson for PathGraph {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "node_weights".to_string(),
                Value::Array(self.node_weights().iter().map(|w| w.to_json()).collect()),
            ),
            (
                "edge_weights".to_string(),
                Value::Array(self.edge_weights().iter().map(|w| w.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for PathGraph {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let nodes = weight_vec(value, "node_weights", "PathGraph")?;
        let edges = weight_vec(value, "edge_weights", "PathGraph")?;
        PathGraph::from_weights(nodes, edges).map_err(|e| JsonError::msg(format!("PathGraph: {e}")))
    }
}

impl ToJson for TreeEdge {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("a".to_string(), self.a.to_json()),
            ("b".to_string(), self.b.to_json()),
            ("weight".to_string(), self.weight.to_json()),
        ])
    }
}

impl FromJson for TreeEdge {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(TreeEdge::new(
            NodeId::from_json(field(value, "a", "edge")?)?,
            NodeId::from_json(field(value, "b", "edge")?)?,
            Weight::from_json(field(value, "weight", "edge")?)?,
        ))
    }
}

fn edge_list<T: FromJson>(value: &Value, ty: &str) -> Result<Vec<T>, JsonError> {
    field(value, "edges", ty)?
        .as_array()
        .ok_or_else(|| JsonError::msg(format!("{ty}: \"edges\" must be an array")))?
        .iter()
        .map(T::from_json)
        .collect()
}

impl ToJson for Tree {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "node_weights".to_string(),
                Value::Array(self.node_weights().iter().map(|w| w.to_json()).collect()),
            ),
            (
                "edges".to_string(),
                Value::Array(self.edges().iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for Tree {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let nodes = weight_vec(value, "node_weights", "Tree")?;
        let edges = edge_list::<TreeEdge>(value, "Tree")?;
        Tree::from_edges(nodes, edges).map_err(|e| JsonError::msg(format!("Tree: {e}")))
    }
}

impl ToJson for ProcessEdge {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("a".to_string(), self.a.to_json()),
            ("b".to_string(), self.b.to_json()),
            ("weight".to_string(), self.weight.to_json()),
        ])
    }
}

impl FromJson for ProcessEdge {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(ProcessEdge {
            a: NodeId::from_json(field(value, "a", "edge")?)?,
            b: NodeId::from_json(field(value, "b", "edge")?)?,
            weight: Weight::from_json(field(value, "weight", "edge")?)?,
        })
    }
}

impl ToJson for ProcessGraph {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "node_weights".to_string(),
                Value::Array(self.node_weights().iter().map(|w| w.to_json()).collect()),
            ),
            (
                "edges".to_string(),
                Value::Array(self.edges().iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for ProcessGraph {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let nodes = weight_vec(value, "node_weights", "ProcessGraph")?;
        let edges = edge_list::<ProcessEdge>(value, "ProcessGraph")?;
        ProcessGraph::from_edges(nodes, edges)
            .map_err(|e| JsonError::msg(format!("ProcessGraph: {e}")))
    }
}

impl ToJson for CutSet {
    fn to_json(&self) -> Value {
        Value::Object(vec![(
            "edges".to_string(),
            Value::Array(self.iter().map(|e| e.to_json()).collect()),
        )])
    }
}

impl FromJson for CutSet {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(CutSet::new(edge_list::<EdgeId>(value, "CutSet")?))
    }
}

impl ToJson for Segment {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("start".to_string(), Value::from(self.start)),
            ("end".to_string(), Value::from(self.end)),
            ("weight".to_string(), self.weight.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Value::parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(Value::parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(Value::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(
            Value::parse(&u64::MAX.to_string()).unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            Value::parse("\"hi\\n\\u00e9\"").unwrap().as_str(),
            Some("hi\né")
        );
    }

    #[test]
    fn parses_structures_and_roundtrips() {
        let text = r#"{"a": [1, 2, {"b": "x"}], "c": null, "d": true}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v["a"][2]["b"], "x");
        assert!(v["c"].is_null());
        assert_eq!(v["missing"], Value::Null);
        let reparsed = Value::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
        let pretty = Value::parse(&v.pretty()).unwrap();
        assert_eq!(v, pretty);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Value::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
        assert!(Value::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "nul",
            "tru",
            "01",
            "1.",
            "1e",
            "--1",
            "\"",
            "\"\\q\"",
            "\"\\u12\"",
            "[1],",
            "{\"a\":1,}x",
            "+5",
            "NaN",
            "Infinity",
            "1e999",
            "\u{1}",
            "\"abc",
            "{\"k\" 1}",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 10) + &"]".repeat(MAX_DEPTH + 10);
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn parse_with_check_interrupts_large_documents() {
        let big = format!(
            "[{}]",
            (0..3 * CHECK_STRIDE)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        // A callback that never fires parses identically to plain parse.
        let mut never = || false;
        let v = Value::parse_with_check(&big, &mut never).unwrap();
        assert_eq!(v, Value::parse(&big).unwrap());
        // One that fires on its second poll stops mid-document with the
        // interrupted flag (and never sees the end of the input).
        let mut polls = 0;
        let mut second = || {
            polls += 1;
            polls >= 2
        };
        let err = Value::parse_with_check(&big, &mut second).unwrap_err();
        assert!(err.interrupted, "{err}");
        assert!(err.offset.unwrap() < big.len());
        // Malformed input is still a plain (non-interrupted) error.
        let mut never = || false;
        let err = Value::parse_with_check("[1, 2", &mut never).unwrap_err();
        assert!(!err.interrupted, "{err}");
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = Value::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v["k"].as_u64(), Some(2));
    }

    #[test]
    fn json_macro_builds_documents() {
        let v = json!({
            "name": "tgp",
            "count": 3usize,
            "ratio": 0.5,
            "tags": json!([1, 2, 3]),
            "nothing": json!(null),
        });
        assert_eq!(v["name"], "tgp");
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["ratio"].as_f64(), Some(0.5));
        assert_eq!(v["tags"][2].as_u64(), Some(3));
        assert!(v["nothing"].is_null());
        assert_eq!(json!([1u64, 4]), Value::parse("[1,4]").unwrap());
    }

    #[test]
    fn string_escaping_roundtrips() {
        let v = Value::String("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn graph_types_roundtrip() {
        let p = PathGraph::from_raw(&[2, 3, 5], &[10, 20]).unwrap();
        let back = PathGraph::from_json(&Value::parse(&p.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(p, back);

        let t = Tree::from_raw(&[1, 2, 3], &[(0, 1, 5), (1, 2, 7)]).unwrap();
        let back = Tree::from_json(&Value::parse(&t.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(t, back);

        let g = ProcessGraph::from_raw(&[1, 1, 1], &[(0, 1, 5), (1, 2, 7), (2, 0, 2)]).unwrap();
        let back =
            ProcessGraph::from_json(&Value::parse(&g.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(g, back);

        let cut = CutSet::new(vec![EdgeId::new(4), EdgeId::new(1)]);
        let back = CutSet::from_json(&Value::parse(&cut.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(cut, back);
    }

    #[test]
    fn decoding_validates_invariants() {
        // Wrong edge count.
        let bad = Value::parse(r#"{"node_weights": [1, 2], "edge_weights": [1, 2]}"#).unwrap();
        assert!(PathGraph::from_json(&bad).is_err());
        // Cycle.
        let cyclic = Value::parse(
            r#"{"node_weights": [1, 2, 3],
                "edges": [{"a": 0, "b": 1, "weight": 1},
                          {"a": 1, "b": 0, "weight": 1}]}"#,
        )
        .unwrap();
        assert!(Tree::from_json(&cyclic).is_err());
        // Negative weight.
        let neg = Value::parse(r#"{"node_weights": [-1], "edge_weights": []}"#).unwrap();
        assert!(PathGraph::from_json(&neg).is_err());
        // Not an object at all.
        assert!(Tree::from_json(&Value::parse("[1, 2]").unwrap()).is_err());
    }
}
