//! General process graphs (arbitrary connected weighted graphs).
//!
//! Section 3 of the paper applies the linear-graph algorithms to systems
//! whose process graph is *not* linear by first approximating the system
//! with a linear super-graph. [`ProcessGraph`] is the input to that
//! approximation (see [`crate::supergraph`]).

use std::collections::VecDeque;

use crate::{GraphError, NodeId, UnionFind, Weight};

/// An undirected edge of a [`ProcessGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessEdge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Message volume between the two processes.
    pub weight: Weight,
}

/// A general connected weighted graph of communicating processes.
///
/// Unlike [`Tree`](crate::Tree) and [`PathGraph`](crate::PathGraph), a
/// process graph may contain cycles (e.g. a feedback loop in a simulated
/// logic circuit). Parallel edges are merged at construction by summing
/// their weights, since only the total message volume between a pair of
/// processes matters for partitioning.
///
/// # Examples
///
/// ```
/// use tgp_graph::ProcessGraph;
///
/// # fn main() -> Result<(), tgp_graph::GraphError> {
/// // A triangle with one doubled edge.
/// let g = ProcessGraph::from_raw(&[1, 1, 1], &[(0, 1, 5), (1, 2, 7), (2, 0, 2), (0, 1, 3)])?;
/// assert_eq!(g.edge_count(), 3); // parallel (0,1) edges merged: 5 + 3
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessGraph {
    node_weights: Vec<Weight>,
    edges: Vec<ProcessEdge>,
    adjacency: Vec<Vec<(NodeId, usize)>>,
}

impl ProcessGraph {
    /// Builds a process graph from vertex weights and an edge list.
    ///
    /// Parallel edges are merged (weights summed); edge order is
    /// normalized so `a < b`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] if there are no nodes.
    /// * [`GraphError::NodeOutOfRange`] if an edge endpoint is invalid.
    /// * [`GraphError::SelfLoop`] if an edge connects a node to itself.
    /// * [`GraphError::Disconnected`] if the graph is not connected.
    /// * [`GraphError::WeightOverflow`] if the combined total of all vertex
    ///   and edge weights reaches `u64::MAX`.
    pub fn from_edges(
        node_weights: Vec<Weight>,
        raw_edges: Vec<ProcessEdge>,
    ) -> Result<Self, GraphError> {
        let n = node_weights.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let edge_weights: Vec<Weight> = raw_edges.iter().map(|e| e.weight).collect();
        crate::weight::check_combined_total(&node_weights, &edge_weights)?;
        let mut normalized: Vec<(usize, usize, Weight)> = Vec::with_capacity(raw_edges.len());
        for e in &raw_edges {
            for endpoint in [e.a, e.b] {
                if endpoint.index() >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: endpoint,
                        len: n,
                    });
                }
            }
            if e.a == e.b {
                return Err(GraphError::SelfLoop { node: e.a });
            }
            let (lo, hi) = if e.a < e.b { (e.a, e.b) } else { (e.b, e.a) };
            normalized.push((lo.index(), hi.index(), e.weight));
        }
        normalized.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut edges: Vec<ProcessEdge> = Vec::with_capacity(normalized.len());
        for (a, b, w) in normalized {
            match edges.last_mut() {
                Some(last) if last.a.index() == a && last.b.index() == b => {
                    last.weight += w;
                }
                _ => edges.push(ProcessEdge {
                    a: NodeId::new(a),
                    b: NodeId::new(b),
                    weight: w,
                }),
            }
        }
        let mut uf = UnionFind::new(n);
        for e in &edges {
            uf.union(e.a.index(), e.b.index());
        }
        if uf.component_count() != 1 {
            return Err(GraphError::Disconnected);
        }
        let mut g = ProcessGraph {
            node_weights,
            edges,
            adjacency: Vec::new(),
        };
        g.rebuild_cache();
        Ok(g)
    }

    /// Builds a process graph from raw tuples (convenience for tests and
    /// examples).
    ///
    /// # Errors
    ///
    /// Same as [`ProcessGraph::from_edges`].
    pub fn from_raw(
        node_weights: &[u64],
        edges: &[(usize, usize, u64)],
    ) -> Result<Self, GraphError> {
        Self::from_edges(
            node_weights.iter().copied().map(Weight::new).collect(),
            edges
                .iter()
                .map(|&(a, b, w)| ProcessEdge {
                    a: NodeId::new(a),
                    b: NodeId::new(b),
                    weight: Weight::new(w),
                })
                .collect(),
        )
    }

    /// Re-derives the adjacency cache after deserialization.
    pub fn rebuild_cache(&mut self) {
        let mut adjacency = vec![Vec::new(); self.node_weights.len()];
        for (i, e) in self.edges.iter().enumerate() {
            adjacency[e.a.index()].push((e.b, i));
            adjacency[e.b.index()].push((e.a, i));
        }
        self.adjacency = adjacency;
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.node_weights.len()
    }

    /// Always `false`: construction rejects empty graphs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of (merged) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Weight of a process.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_weight(&self, node: NodeId) -> Weight {
        self.node_weights[node.index()]
    }

    /// All node weights in index order.
    pub fn node_weights(&self) -> &[Weight] {
        &self.node_weights
    }

    /// All merged edges, sorted by `(a, b)`.
    pub fn edges(&self) -> &[ProcessEdge] {
        &self.edges
    }

    /// `(neighbor, edge index)` pairs incident to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, usize)] {
        &self.adjacency[node.index()]
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> Weight {
        self.node_weights.iter().copied().sum()
    }

    /// Breadth-first order starting from `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn bfs_order(&self, start: NodeId) -> Vec<NodeId> {
        assert!(start.index() < self.len(), "start {start} out of range");
        let mut order = Vec::with_capacity(self.len());
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::new();
        queue.push_back(start);
        seen[start.index()] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(u, _) in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
        order
    }

    /// A pseudo-peripheral node found by a double BFS sweep — a good start
    /// point for linear orderings.
    pub fn peripheral_node(&self) -> NodeId {
        let far1 = *self
            .bfs_order(NodeId::new(0))
            .last()
            .expect("graph is non-empty");
        *self.bfs_order(far1).last().expect("graph is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle5() -> ProcessGraph {
        ProcessGraph::from_raw(
            &[1, 2, 3, 4, 5],
            &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4), (4, 0, 5)],
        )
        .unwrap()
    }

    #[test]
    fn construction_allows_cycles() {
        let g = cycle5();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.total_weight(), Weight::new(15));
    }

    #[test]
    fn parallel_edges_are_merged() {
        let g = ProcessGraph::from_raw(&[1, 1], &[(0, 1, 5), (1, 0, 7)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edges()[0].weight, Weight::new(12));
    }

    #[test]
    fn rejects_empty_self_loop_range_disconnected() {
        assert_eq!(ProcessGraph::from_raw(&[], &[]), Err(GraphError::Empty));
        assert_eq!(
            ProcessGraph::from_raw(&[1, 2], &[(0, 0, 1), (0, 1, 1)]),
            Err(GraphError::SelfLoop {
                node: NodeId::new(0)
            })
        );
        assert_eq!(
            ProcessGraph::from_raw(&[1, 2], &[(0, 7, 1)]),
            Err(GraphError::NodeOutOfRange {
                node: NodeId::new(7),
                len: 2
            })
        );
        assert_eq!(
            ProcessGraph::from_raw(&[1, 2, 3], &[(0, 1, 1)]),
            Err(GraphError::Disconnected)
        );
    }

    #[test]
    fn bfs_order_covers_all_nodes() {
        let g = cycle5();
        let order = g.bfs_order(NodeId::new(2));
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], NodeId::new(2));
        let mut sorted: Vec<usize> = order.iter().map(|v| v.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peripheral_node_on_path_is_an_end() {
        let g = ProcessGraph::from_raw(&[1, 1, 1, 1], &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let p = g.peripheral_node();
        assert!(p == NodeId::new(0) || p == NodeId::new(3));
    }

    #[test]
    fn single_node_graph() {
        let g = ProcessGraph::from_raw(&[4], &[]).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.peripheral_node(), NodeId::new(0));
    }
}
