//! Weighted task-graph substrate for the `tgp` workspace.
//!
//! This crate provides the graph machinery on which the partitioning
//! algorithms of Ray & Jiang (ICDCS 1994) operate:
//!
//! * [`PathGraph`] — linear task graphs (pipelines, iterative strip
//!   computations),
//! * [`Tree`] — tree task graphs (divide-and-conquer computations),
//! * [`CutSet`] — sets of edges removed by a partition, with component
//!   extraction and cut/bottleneck weights,
//! * [`Contraction`] — lumping components into super-nodes (used between
//!   the bottleneck- and processor-minimization phases),
//! * [`ProcessGraph`] and [`supergraph`] — general process graphs and their
//!   linear super-graph approximation (Section 3 of the paper),
//! * [`spanning`] — the tree super-graph approximation the paper's
//!   conclusion proposes for general systems,
//! * [`generators`] — reproducible random workloads used by tests and the
//!   benchmark harness.
//!
//! # Conventions
//!
//! All weights are non-negative integers wrapped in the [`Weight`] newtype.
//! Node and edge indices are wrapped in [`NodeId`] and [`EdgeId`]. In a
//! [`PathGraph`] with `n` nodes, edge `i` connects nodes `i` and `i + 1`
//! (`0 <= i < n - 1`), matching the paper's `e_i = (v_i, v_{i+1})`.
//!
//! # Example
//!
//! ```
//! use tgp_graph::{PathGraph, Weight};
//!
//! # fn main() -> Result<(), tgp_graph::GraphError> {
//! let chain = PathGraph::from_weights(
//!     vec![Weight::new(3), Weight::new(1), Weight::new(4)],
//!     vec![Weight::new(10), Weight::new(20)],
//! )?;
//! assert_eq!(chain.len(), 3);
//! assert_eq!(chain.total_weight(), Weight::new(8));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod contraction;
mod cut;
pub mod dot;
mod error;
pub mod generators;
mod ids;
pub mod json;
mod path;
mod process;
pub mod spanning;
pub mod supergraph;
mod tree;
mod union_find;
mod view;
mod weight;

pub use contraction::{contract, Contraction};
pub use cut::{Components, CutSet, Segment};
pub use error::GraphError;
pub use ids::{EdgeId, NodeId};
pub use path::PathGraph;
pub use process::{ProcessEdge, ProcessGraph};
pub use tree::{Tree, TreeEdge};
pub use union_find::{UnionFind, UnionFind32};
pub use view::{ChainView, TreeView};
pub use weight::Weight;
