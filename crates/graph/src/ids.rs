//! Index newtypes for nodes and edges.

use std::fmt;

/// Identifier of a node (task) within a graph.
///
/// Node ids are dense indices `0..n`. They are only meaningful relative to
/// the graph that produced them.
///
/// # Examples
///
/// ```
/// use tgp_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// Identifier of an edge (data dependency) within a graph.
///
/// Edge ids are dense indices `0..m`. In a [`PathGraph`](crate::PathGraph)
/// edge `i` connects nodes `i` and `i + 1`, matching the paper's
/// `e_i = (v_i, v_{i+1})`.
///
/// # Examples
///
/// ```
/// use tgp_graph::EdgeId;
/// let e = EdgeId::new(0);
/// assert_eq!(e.index(), 0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(usize);

impl EdgeId {
    /// Creates an edge id from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        EdgeId(index)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    #[inline]
    fn from(index: usize) -> Self {
        EdgeId(index)
    }
}

impl From<EdgeId> for usize {
    #[inline]
    fn from(id: EdgeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(5);
        assert_eq!(v.index(), 5);
        assert_eq!(usize::from(v), 5);
        assert_eq!(NodeId::from(5usize), v);
        assert_eq!(v.to_string(), "v5");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::new(7);
        assert_eq!(e.index(), 7);
        assert_eq!(usize::from(e), 7);
        assert_eq!(EdgeId::from(7usize), e);
        assert_eq!(e.to_string(), "e7");
    }

    #[test]
    fn ordering_matches_indices() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(1));
    }
}
