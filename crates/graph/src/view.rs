//! Read-only access traits the solver hot paths are generic over.
//!
//! The paper's algorithms only ever *read* a graph: weights by index,
//! O(1) span sums on chains, edge endpoints on trees. [`ChainView`] and
//! [`TreeView`] capture exactly that surface, with method names (and
//! panic contracts) identical to the inherent methods of [`PathGraph`]
//! and [`Tree`] — so a solver body written against the concrete types
//! compiles unchanged once its signature is made generic. `tgp-store`
//! implements the same traits for its flat SoA/CSR representations,
//! which is how one solver code path serves pointer graphs, flat
//! in-RAM graphs, and mmap-backed out-of-core graphs alike.
//!
//! [`PathGraph`]: crate::PathGraph
//! [`Tree`]: crate::Tree

use crate::{CutSet, EdgeId, GraphError, NodeId, PathGraph, Segment, Tree, TreeEdge, Weight};

/// Read access to a linear task graph `v_0 — v_1 — … — v_{n-1}`.
///
/// Implementations must be non-empty (`len() >= 1`) and uphold the
/// crate-wide invariant that the combined total of all vertex and edge
/// weights is below `u64::MAX`, so downstream arithmetic cannot
/// overflow. Index-out-of-range access may panic, as on [`PathGraph`].
pub trait ChainView {
    /// Number of nodes `n` (always ≥ 1).
    fn len(&self) -> usize;

    /// Always `false`: chains are non-empty by construction.
    fn is_empty(&self) -> bool {
        false
    }

    /// Number of edges (`n - 1`).
    fn edge_count(&self) -> usize {
        self.len() - 1
    }

    /// Weight `α_i` of node `i`.
    fn node_weight(&self, node: NodeId) -> Weight;

    /// Weight `β_i` of edge `i` (connecting nodes `i` and `i + 1`).
    fn edge_weight(&self, edge: EdgeId) -> Weight;

    /// Sum of vertex weights over the inclusive span `lo..=hi`; O(1)
    /// on every provided implementation (prefix sums).
    fn span_weight(&self, lo: usize, hi: usize) -> Weight;

    /// Total vertex weight of the whole chain.
    fn total_weight(&self) -> Weight {
        self.span_weight(0, self.len() - 1)
    }

    /// The maximum single vertex weight (the feasibility floor for the
    /// load bound `K`).
    fn max_node_weight(&self) -> Weight {
        (0..self.len())
            .map(|i| self.node_weight(NodeId::new(i)))
            .max()
            .expect("chains are non-empty")
    }

    /// Total weight of the cut edges (the "bandwidth" objective,
    /// `β(S)`); same contract as `PathGraph::cut_weight`.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this
    /// chain does not have.
    fn cut_weight(&self, cut: &CutSet) -> Result<Weight, GraphError> {
        cut.check_range(self.edge_count())?;
        Ok(cut.iter().map(|e| self.edge_weight(e)).sum())
    }

    /// Maximum weight over the cut edges (the "bottleneck" objective);
    /// zero for the empty cut.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this
    /// chain does not have.
    fn bottleneck(&self, cut: &CutSet) -> Result<Weight, GraphError> {
        cut.check_range(self.edge_count())?;
        Ok(cut
            .iter()
            .map(|e| self.edge_weight(e))
            .max()
            .unwrap_or(Weight::ZERO))
    }

    /// The maximal contiguous segments of `P − S`, left to right; same
    /// contract (and output) as `PathGraph::segments`.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this
    /// chain does not have.
    fn segments(&self, cut: &CutSet) -> Result<Vec<Segment>, GraphError> {
        cut.check_range(self.edge_count())?;
        let mut segments = Vec::with_capacity(cut.len() + 1);
        let mut start = 0usize;
        for e in cut.iter() {
            // Cutting edge e = (v_e, v_{e+1}) ends a segment at node e.
            let end = e.index();
            segments.push(Segment {
                start,
                end,
                weight: self.span_weight(start, end),
            });
            start = end + 1;
        }
        let last = self.len() - 1;
        segments.push(Segment {
            start,
            end: last,
            weight: self.span_weight(start, last),
        });
        Ok(segments)
    }

    /// Returns `true` if every segment of `P − S` weighs at most
    /// `bound`.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this
    /// chain does not have.
    fn is_feasible_cut(&self, cut: &CutSet, bound: Weight) -> Result<bool, GraphError> {
        Ok(self
            .segments(cut)?
            .iter()
            .all(|segment| segment.weight <= bound))
    }
}

impl ChainView for PathGraph {
    fn len(&self) -> usize {
        PathGraph::len(self)
    }

    fn edge_count(&self) -> usize {
        PathGraph::edge_count(self)
    }

    fn node_weight(&self, node: NodeId) -> Weight {
        PathGraph::node_weight(self, node)
    }

    fn edge_weight(&self, edge: EdgeId) -> Weight {
        PathGraph::edge_weight(self, edge)
    }

    fn span_weight(&self, lo: usize, hi: usize) -> Weight {
        PathGraph::span_weight(self, lo, hi)
    }

    fn total_weight(&self) -> Weight {
        PathGraph::total_weight(self)
    }

    fn max_node_weight(&self) -> Weight {
        PathGraph::max_node_weight(self)
    }
}

/// Read access to a weighted free tree.
///
/// Same invariants as [`ChainView`]: non-empty, combined weight total
/// below `u64::MAX`, panics on out-of-range ids.
pub trait TreeView {
    /// Number of nodes (always ≥ 1).
    fn len(&self) -> usize;

    /// Always `false`: trees are non-empty by construction.
    fn is_empty(&self) -> bool {
        false
    }

    /// Number of edges (`n - 1`).
    fn edge_count(&self) -> usize {
        self.len() - 1
    }

    /// Weight `ω(v)` of a node.
    fn node_weight(&self, node: NodeId) -> Weight;

    /// The edge with the given id, endpoints in the orientation the
    /// graph was built with (solvers and cache keys depend on stable
    /// orientation).
    fn edge(&self, edge: EdgeId) -> TreeEdge;

    /// Weight `δ(e)` of an edge.
    fn edge_weight(&self, edge: EdgeId) -> Weight {
        self.edge(edge).weight
    }

    /// Total vertex weight of the tree.
    fn total_weight(&self) -> Weight {
        (0..self.len())
            .map(|i| self.node_weight(NodeId::new(i)))
            .sum()
    }

    /// The maximum single vertex weight (the feasibility floor for the
    /// load bound `K`).
    fn max_node_weight(&self) -> Weight {
        (0..self.len())
            .map(|i| self.node_weight(NodeId::new(i)))
            .max()
            .expect("trees are non-empty")
    }

    /// Total weight of the cut edges; same contract as
    /// `Tree::cut_weight`.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this
    /// tree does not have.
    fn cut_weight(&self, cut: &CutSet) -> Result<Weight, GraphError> {
        cut.check_range(self.edge_count())?;
        Ok(cut.iter().map(|e| self.edge_weight(e)).sum())
    }

    /// Maximum weight over the cut edges; zero for the empty cut.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this
    /// tree does not have.
    fn bottleneck(&self, cut: &CutSet) -> Result<Weight, GraphError> {
        cut.check_range(self.edge_count())?;
        Ok(cut
            .iter()
            .map(|e| self.edge_weight(e))
            .max()
            .unwrap_or(Weight::ZERO))
    }
}

impl TreeView for Tree {
    fn len(&self) -> usize {
        Tree::len(self)
    }

    fn edge_count(&self) -> usize {
        Tree::edge_count(self)
    }

    fn node_weight(&self, node: NodeId) -> Weight {
        Tree::node_weight(self, node)
    }

    fn edge(&self, edge: EdgeId) -> TreeEdge {
        Tree::edge(self, edge)
    }

    fn edge_weight(&self, edge: EdgeId) -> Weight {
        Tree::edge_weight(self, edge)
    }

    fn total_weight(&self) -> Weight {
        Tree::total_weight(self)
    }

    fn max_node_weight(&self) -> Weight {
        Tree::max_node_weight(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_view_matches_inherent_methods() {
        let p = PathGraph::from_raw(&[2, 3, 5, 7], &[10, 20, 30]).unwrap();
        fn probe<C: ChainView>(c: &C) -> (usize, usize, Weight, Weight, Weight, Weight, Weight) {
            (
                c.len(),
                c.edge_count(),
                c.node_weight(NodeId::new(2)),
                c.edge_weight(EdgeId::new(1)),
                c.span_weight(1, 3),
                c.total_weight(),
                c.max_node_weight(),
            )
        }
        assert_eq!(
            probe(&p),
            (
                4,
                3,
                Weight::new(5),
                Weight::new(20),
                Weight::new(15),
                Weight::new(17),
                Weight::new(7)
            )
        );
    }

    #[test]
    fn tree_view_matches_inherent_methods() {
        let t = Tree::from_raw(&[1, 2, 3, 4], &[(0, 1, 10), (0, 2, 20), (0, 3, 30)]).unwrap();
        fn probe<T: TreeView>(t: &T) -> (usize, usize, Weight, TreeEdge, Weight, Weight, Weight) {
            (
                t.len(),
                t.edge_count(),
                t.node_weight(NodeId::new(3)),
                t.edge(EdgeId::new(1)),
                t.edge_weight(EdgeId::new(2)),
                t.total_weight(),
                t.max_node_weight(),
            )
        }
        let (n, m, w, e, ew, tw, mw) = probe(&t);
        assert_eq!((n, m), (4, 3));
        assert_eq!(w, Weight::new(4));
        assert_eq!(
            (e.a, e.b, e.weight),
            (NodeId::new(0), NodeId::new(2), Weight::new(20))
        );
        assert_eq!(ew, Weight::new(30));
        assert_eq!(tw, Weight::new(10));
        assert_eq!(mw, Weight::new(4));
    }
}
