//! Super-node contraction: lumping the components of `T − S` into a new tree.
//!
//! Section 2.2 of the paper observes that after bottleneck minimization cuts
//! a tree into components, "there may be at most one edge between two
//! connected components", so lumping every component into a super-node
//! (whose weight is the component's total vertex weight) yields another
//! tree whose edges are exactly the cut edges. Processor minimization then
//! runs on that contracted tree.

use crate::{Components, CutSet, EdgeId, GraphError, NodeId, Tree, TreeEdge};

/// The result of contracting the components of `T − S` into super-nodes.
///
/// # Examples
///
/// ```
/// use tgp_graph::{contract, CutSet, EdgeId, Tree, Weight};
///
/// # fn main() -> Result<(), tgp_graph::GraphError> {
/// let t = Tree::from_raw(&[1, 2, 3, 4], &[(0, 1, 10), (1, 2, 20), (2, 3, 30)])?;
/// let cut = CutSet::new(vec![EdgeId::new(1)]);
/// let c = contract(&t, &cut)?;
/// assert_eq!(c.tree().len(), 2);           // two super-nodes
/// assert_eq!(c.tree().total_weight(), t.total_weight());
/// assert_eq!(c.original_edge(EdgeId::new(0)), EdgeId::new(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Contraction {
    tree: Tree,
    /// `node_map[v]` = super-node containing original node `v`.
    node_map: Vec<NodeId>,
    /// `edge_map[e']` = original edge id of contracted edge `e'`.
    edge_map: Vec<EdgeId>,
    components: Components,
}

impl Contraction {
    /// The contracted tree of super-nodes.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The super-node containing original node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the original tree.
    pub fn super_node_of(&self, v: NodeId) -> NodeId {
        self.node_map[v.index()]
    }

    /// The original edge that became contracted edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for the contracted tree.
    pub fn original_edge(&self, e: EdgeId) -> EdgeId {
        self.edge_map[e.index()]
    }

    /// The components of the original tree under the cut.
    pub fn components(&self) -> &Components {
        &self.components
    }

    /// Translates a cut on the contracted tree back to original edge ids.
    ///
    /// # Panics
    ///
    /// Panics if `cut` refers to edges outside the contracted tree.
    pub fn lift_cut(&self, cut: &CutSet) -> CutSet {
        cut.iter().map(|e| self.original_edge(e)).collect()
    }
}

/// Contracts each component of `tree − cut` into a super-node.
///
/// The resulting tree has one node per component (weight = component weight)
/// and one edge per cut edge (same weight). Mapping tables relating original
/// and contracted ids are kept in the returned [`Contraction`].
///
/// # Errors
///
/// [`GraphError::EdgeOutOfRange`] if the cut refers to edges the tree does
/// not have.
pub fn contract(tree: &Tree, cut: &CutSet) -> Result<Contraction, GraphError> {
    let components = tree.components(cut)?;
    let node_map: Vec<NodeId> = (0..tree.len())
        .map(|v| NodeId::new(components.component_of(NodeId::new(v))))
        .collect();
    let super_weights = components.weights().to_vec();
    let mut edges = Vec::with_capacity(cut.len());
    let mut edge_map = Vec::with_capacity(cut.len());
    for e in cut.iter() {
        let TreeEdge { a, b, weight } = tree.edge(e);
        edges.push(TreeEdge::new(
            node_map[a.index()],
            node_map[b.index()],
            weight,
        ));
        edge_map.push(e);
    }
    let contracted = Tree::from_edges(super_weights, edges)
        .expect("components of a tree minus a cut always contract to a tree");
    Ok(Contraction {
        tree: contracted,
        node_map,
        edge_map,
        components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Weight;

    fn caterpillar() -> Tree {
        Tree::from_raw(
            &[1, 2, 3, 4, 5, 6, 7],
            &[
                (0, 1, 10),
                (1, 2, 20),
                (2, 3, 30),
                (1, 4, 40),
                (1, 5, 50),
                (2, 6, 60),
            ],
        )
        .unwrap()
    }

    #[test]
    fn empty_cut_contracts_to_single_node() {
        let t = caterpillar();
        let c = contract(&t, &CutSet::empty()).unwrap();
        assert_eq!(c.tree().len(), 1);
        assert_eq!(c.tree().total_weight(), t.total_weight());
        assert_eq!(c.tree().edge_count(), 0);
    }

    #[test]
    fn full_cut_contracts_to_original_shape() {
        let t = caterpillar();
        let cut: CutSet = (0..t.edge_count()).map(EdgeId::new).collect();
        let c = contract(&t, &cut).unwrap();
        assert_eq!(c.tree().len(), t.len());
        assert_eq!(c.tree().edge_count(), t.edge_count());
        assert_eq!(c.tree().total_weight(), t.total_weight());
    }

    #[test]
    fn weights_are_preserved_and_mapped() {
        let t = caterpillar();
        let cut = CutSet::new(vec![EdgeId::new(1)]); // split {0,1,4,5} | {2,3,6}
        let c = contract(&t, &cut).unwrap();
        assert_eq!(c.tree().len(), 2);
        assert_eq!(c.tree().total_weight(), Weight::new(28));
        let s0 = c.super_node_of(NodeId::new(0));
        assert_eq!(c.super_node_of(NodeId::new(4)), s0);
        assert_eq!(c.super_node_of(NodeId::new(5)), s0);
        let s2 = c.super_node_of(NodeId::new(2));
        assert_ne!(s0, s2);
        assert_eq!(c.super_node_of(NodeId::new(6)), s2);
        // Component weights: {1,2,5,6}=14 and {3,4,7}=14.
        assert_eq!(c.tree().node_weight(s0), Weight::new(14));
        assert_eq!(c.tree().node_weight(s2), Weight::new(14));
        // Contracted edge carries original weight and maps back.
        assert_eq!(c.tree().edge_weight(EdgeId::new(0)), Weight::new(20));
        assert_eq!(c.original_edge(EdgeId::new(0)), EdgeId::new(1));
    }

    #[test]
    fn lift_cut_translates_ids() {
        let t = caterpillar();
        let cut = CutSet::new(vec![EdgeId::new(1), EdgeId::new(3)]);
        let c = contract(&t, &cut).unwrap();
        let all: CutSet = (0..c.tree().edge_count()).map(EdgeId::new).collect();
        let lifted = c.lift_cut(&all);
        assert_eq!(lifted, cut);
        let none = c.lift_cut(&CutSet::empty());
        assert!(none.is_empty());
    }

    #[test]
    fn out_of_range_cut_rejected() {
        let t = caterpillar();
        let cut = CutSet::new(vec![EdgeId::new(99)]);
        assert!(matches!(
            contract(&t, &cut),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
    }
}
