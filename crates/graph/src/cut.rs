//! Edge cuts and the components they induce.

use crate::{EdgeId, GraphError, NodeId, PathGraph, Tree, UnionFind, Weight};

/// A set of edges removed from a graph (the `S ⊆ E` of the paper).
///
/// Stored as a sorted, de-duplicated vector of edge ids, so membership tests
/// are `O(log |S|)` and iteration is in edge order.
///
/// # Examples
///
/// ```
/// use tgp_graph::{CutSet, EdgeId};
///
/// let cut = CutSet::new(vec![EdgeId::new(3), EdgeId::new(1), EdgeId::new(3)]);
/// assert_eq!(cut.len(), 2);
/// assert!(cut.contains(EdgeId::new(1)));
/// assert!(!cut.contains(EdgeId::new(0)));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash)]
pub struct CutSet {
    edges: Vec<EdgeId>,
}

impl CutSet {
    /// Creates a cut from an arbitrary list of edge ids (sorted and
    /// de-duplicated internally).
    pub fn new(mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        CutSet { edges }
    }

    /// The empty cut.
    pub fn empty() -> Self {
        CutSet::default()
    }

    /// Number of edges in the cut.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no edges are cut.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns `true` if `edge` is in the cut.
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }

    /// Iterates over the cut edges in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().copied()
    }

    /// The cut edges as a sorted slice.
    pub fn as_slice(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Adds an edge to the cut (no-op if already present).
    pub fn insert(&mut self, edge: EdgeId) {
        if let Err(pos) = self.edges.binary_search(&edge) {
            self.edges.insert(pos, edge);
        }
    }

    /// Set union of two cuts.
    pub fn union(&self, other: &CutSet) -> CutSet {
        let mut edges = Vec::with_capacity(self.len() + other.len());
        edges.extend_from_slice(&self.edges);
        edges.extend_from_slice(&other.edges);
        CutSet::new(edges)
    }

    /// Returns `true` if `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &CutSet) -> bool {
        self.iter().all(|e| other.contains(e))
    }

    pub(crate) fn check_range(&self, edge_count: usize) -> Result<(), GraphError> {
        if let Some(&last) = self.edges.last() {
            if last.index() >= edge_count {
                return Err(GraphError::EdgeOutOfRange {
                    edge: last,
                    len: edge_count,
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<EdgeId> for CutSet {
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        CutSet::new(iter.into_iter().collect())
    }
}

impl Extend<EdgeId> for CutSet {
    fn extend<I: IntoIterator<Item = EdgeId>>(&mut self, iter: I) {
        self.edges.extend(iter);
        self.edges.sort_unstable();
        self.edges.dedup();
    }
}

/// The connected components of `G − S` for some graph `G` and cut `S`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `comp_of[v]` = dense component index of node `v`.
    comp_of: Vec<usize>,
    /// Total vertex weight per component.
    weights: Vec<Weight>,
    /// Node count per component.
    sizes: Vec<usize>,
}

impl Components {
    pub(crate) fn from_comp_of(comp_of: Vec<usize>, node_weights: &[Weight]) -> Self {
        let count = comp_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut weights = vec![Weight::ZERO; count];
        let mut sizes = vec![0usize; count];
        for (v, &c) in comp_of.iter().enumerate() {
            weights[c] += node_weights[v];
            sizes[c] += 1;
        }
        Components {
            comp_of,
            weights,
            sizes,
        }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.weights.len()
    }

    /// Component index of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn component_of(&self, node: NodeId) -> usize {
        self.comp_of[node.index()]
    }

    /// Total vertex weight of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.count()`.
    pub fn weight(&self, c: usize) -> Weight {
        self.weights[c]
    }

    /// Node count of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.count()`.
    pub fn size(&self, c: usize) -> usize {
        self.sizes[c]
    }

    /// All component weights.
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// The heaviest component weight.
    pub fn max_weight(&self) -> Weight {
        self.weights.iter().copied().max().unwrap_or(Weight::ZERO)
    }

    /// Returns `true` if every component weight is at most `bound`
    /// (condition 1 — "execution time bound" — of Section 2).
    pub fn is_feasible(&self, bound: Weight) -> bool {
        self.max_weight() <= bound
    }

    /// Groups node ids by component.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count()];
        for (v, &c) in self.comp_of.iter().enumerate() {
            out[c].push(NodeId::new(v));
        }
        out
    }
}

/// A maximal contiguous run of nodes of a [`PathGraph`] after a cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// First node index (inclusive).
    pub start: usize,
    /// Last node index (inclusive).
    pub end: usize,
    /// Total vertex weight of the segment.
    pub weight: Weight,
}

impl Segment {
    /// Number of nodes in the segment.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Segments are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Tree {
    /// Total weight of the cut edges (the "bandwidth" objective).
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this tree
    /// does not have.
    pub fn cut_weight(&self, cut: &CutSet) -> Result<Weight, GraphError> {
        cut.check_range(self.edge_count())?;
        Ok(cut.iter().map(|e| self.edge_weight(e)).sum())
    }

    /// Maximum weight over the cut edges (the "bottleneck" objective);
    /// zero for the empty cut.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this tree
    /// does not have.
    pub fn bottleneck(&self, cut: &CutSet) -> Result<Weight, GraphError> {
        cut.check_range(self.edge_count())?;
        Ok(cut
            .iter()
            .map(|e| self.edge_weight(e))
            .max()
            .unwrap_or(Weight::ZERO))
    }

    /// The connected components of `T − S`.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this tree
    /// does not have.
    pub fn components(&self, cut: &CutSet) -> Result<Components, GraphError> {
        cut.check_range(self.edge_count())?;
        let mut uf = UnionFind::new(self.len());
        for (i, e) in self.edges().iter().enumerate() {
            if !cut.contains(EdgeId::new(i)) {
                uf.union(e.a.index(), e.b.index());
            }
        }
        // Densify component ids in node order.
        let mut dense = vec![usize::MAX; self.len()];
        let mut next = 0usize;
        let mut comp_of = Vec::with_capacity(self.len());
        for v in 0..self.len() {
            let root = uf.find(v);
            if dense[root] == usize::MAX {
                dense[root] = next;
                next += 1;
            }
            comp_of.push(dense[root]);
        }
        Ok(Components::from_comp_of(comp_of, self.node_weights()))
    }
}

impl PathGraph {
    /// Total weight of the cut edges (the "bandwidth" objective, `β(S)`).
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this path
    /// does not have.
    pub fn cut_weight(&self, cut: &CutSet) -> Result<Weight, GraphError> {
        cut.check_range(self.edge_count())?;
        Ok(cut.iter().map(|e| self.edge_weight(e)).sum())
    }

    /// Maximum weight over the cut edges (the "bottleneck" objective);
    /// zero for the empty cut.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this path
    /// does not have.
    pub fn bottleneck(&self, cut: &CutSet) -> Result<Weight, GraphError> {
        cut.check_range(self.edge_count())?;
        Ok(cut
            .iter()
            .map(|e| self.edge_weight(e))
            .max()
            .unwrap_or(Weight::ZERO))
    }

    /// The maximal contiguous segments of `P − S`, left to right.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this path
    /// does not have.
    pub fn segments(&self, cut: &CutSet) -> Result<Vec<Segment>, GraphError> {
        cut.check_range(self.edge_count())?;
        let mut segments = Vec::with_capacity(cut.len() + 1);
        let mut start = 0usize;
        for e in cut.iter() {
            // Cutting edge e = (v_e, v_{e+1}) ends a segment at node e.
            let end = e.index();
            segments.push(Segment {
                start,
                end,
                weight: self.span_weight(start, end),
            });
            start = end + 1;
        }
        let last = self.len() - 1;
        segments.push(Segment {
            start,
            end: last,
            weight: self.span_weight(start, last),
        });
        Ok(segments)
    }

    /// The connected components of `P − S` (same data as [`segments`], in
    /// the [`Components`] form shared with trees).
    ///
    /// [`segments`]: PathGraph::segments
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this path
    /// does not have.
    pub fn components(&self, cut: &CutSet) -> Result<Components, GraphError> {
        let segments = self.segments(cut)?;
        let mut comp_of = vec![0usize; self.len()];
        for (c, seg) in segments.iter().enumerate() {
            for slot in &mut comp_of[seg.start..=seg.end] {
                *slot = c;
            }
        }
        Ok(Components::from_comp_of(comp_of, self.node_weights()))
    }

    /// Returns `true` if every segment of `P − S` weighs at most `bound`.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] if the cut refers to an edge this path
    /// does not have.
    pub fn is_feasible_cut(&self, cut: &CutSet, bound: Weight) -> Result<bool, GraphError> {
        Ok(self
            .segments(cut)?
            .iter()
            .all(|segment| segment.weight <= bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> PathGraph {
        PathGraph::from_raw(&[2, 3, 5, 7, 11], &[1, 2, 3, 4]).unwrap()
    }

    fn star() -> Tree {
        Tree::from_raw(&[0, 10, 20, 30], &[(0, 1, 5), (0, 2, 6), (0, 3, 7)]).unwrap()
    }

    #[test]
    fn cutset_basics() {
        let cut = CutSet::new(vec![EdgeId::new(2), EdgeId::new(0), EdgeId::new(2)]);
        assert_eq!(cut.len(), 2);
        assert!(!cut.is_empty());
        assert!(cut.contains(EdgeId::new(0)));
        assert!(cut.contains(EdgeId::new(2)));
        assert!(!cut.contains(EdgeId::new(1)));
        let ids: Vec<usize> = cut.iter().map(EdgeId::index).collect();
        assert_eq!(ids, vec![0, 2]);
        assert!(CutSet::empty().is_empty());
    }

    #[test]
    fn cutset_insert_union_subset() {
        let mut cut = CutSet::empty();
        cut.insert(EdgeId::new(3));
        cut.insert(EdgeId::new(1));
        cut.insert(EdgeId::new(3));
        assert_eq!(cut.len(), 2);
        let other = CutSet::new(vec![EdgeId::new(0)]);
        let merged = cut.union(&other);
        assert_eq!(merged.len(), 3);
        assert!(cut.is_subset_of(&merged));
        assert!(!merged.is_subset_of(&cut));
    }

    #[test]
    fn cutset_from_iterator_and_extend() {
        let cut: CutSet = [EdgeId::new(1), EdgeId::new(1), EdgeId::new(0)]
            .into_iter()
            .collect();
        assert_eq!(cut.len(), 2);
        let mut cut2 = cut.clone();
        cut2.extend([EdgeId::new(5), EdgeId::new(0)]);
        assert_eq!(cut2.len(), 3);
    }

    #[test]
    fn path_segments_empty_cut() {
        let p = path();
        let segs = p.segments(&CutSet::empty()).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs[0].end, 4);
        assert_eq!(segs[0].weight, Weight::new(28));
        assert_eq!(segs[0].len(), 5);
        assert!(!segs[0].is_empty());
    }

    #[test]
    fn path_segments_with_cuts() {
        let p = path();
        let cut = CutSet::new(vec![EdgeId::new(1), EdgeId::new(3)]);
        let segs = p.segments(&cut).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!((segs[0].start, segs[0].end), (0, 1));
        assert_eq!(segs[0].weight, Weight::new(5));
        assert_eq!((segs[1].start, segs[1].end), (2, 3));
        assert_eq!(segs[1].weight, Weight::new(12));
        assert_eq!((segs[2].start, segs[2].end), (4, 4));
        assert_eq!(segs[2].weight, Weight::new(11));
    }

    #[test]
    fn path_cut_weight_and_bottleneck() {
        let p = path();
        let cut = CutSet::new(vec![EdgeId::new(0), EdgeId::new(2)]);
        assert_eq!(p.cut_weight(&cut).unwrap(), Weight::new(4));
        assert_eq!(p.bottleneck(&cut).unwrap(), Weight::new(3));
        assert_eq!(p.bottleneck(&CutSet::empty()).unwrap(), Weight::ZERO);
    }

    #[test]
    fn path_feasibility() {
        let p = path();
        let cut = CutSet::new(vec![EdgeId::new(1), EdgeId::new(3)]);
        assert!(p.is_feasible_cut(&cut, Weight::new(12)).unwrap());
        assert!(!p.is_feasible_cut(&cut, Weight::new(11)).unwrap());
    }

    #[test]
    fn path_components_match_segments() {
        let p = path();
        let cut = CutSet::new(vec![EdgeId::new(2)]);
        let comps = p.components(&cut).unwrap();
        assert_eq!(comps.count(), 2);
        assert_eq!(comps.component_of(NodeId::new(0)), 0);
        assert_eq!(comps.component_of(NodeId::new(2)), 0);
        assert_eq!(comps.component_of(NodeId::new(3)), 1);
        assert_eq!(comps.weight(0), Weight::new(10));
        assert_eq!(comps.weight(1), Weight::new(18));
        assert_eq!(comps.max_weight(), Weight::new(18));
        assert_eq!(comps.size(0), 3);
        assert!(comps.is_feasible(Weight::new(18)));
        assert!(!comps.is_feasible(Weight::new(17)));
    }

    #[test]
    fn out_of_range_cut_is_rejected() {
        let p = path();
        let cut = CutSet::new(vec![EdgeId::new(9)]);
        assert!(matches!(
            p.segments(&cut),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
        assert!(matches!(
            p.cut_weight(&cut),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
        let t = star();
        assert!(matches!(
            t.components(&cut),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
    }

    #[test]
    fn tree_components_and_objectives() {
        let t = star();
        let cut = CutSet::new(vec![EdgeId::new(0), EdgeId::new(2)]);
        let comps = t.components(&cut).unwrap();
        assert_eq!(comps.count(), 3);
        // v0 and v2 stay together (edge 1 kept); v1 and v3 are singletons.
        assert_eq!(
            comps.component_of(NodeId::new(0)),
            comps.component_of(NodeId::new(2))
        );
        assert_ne!(
            comps.component_of(NodeId::new(1)),
            comps.component_of(NodeId::new(3))
        );
        assert_eq!(comps.max_weight(), Weight::new(30));
        assert_eq!(t.cut_weight(&cut).unwrap(), Weight::new(12));
        assert_eq!(t.bottleneck(&cut).unwrap(), Weight::new(7));
        let members = comps.members();
        assert_eq!(members.iter().map(Vec::len).sum::<usize>(), 4);
    }

    #[test]
    fn tree_empty_cut_single_component() {
        let t = star();
        let comps = t.components(&CutSet::empty()).unwrap();
        assert_eq!(comps.count(), 1);
        assert_eq!(comps.weight(0), Weight::new(60));
    }

    #[test]
    fn full_cut_isolates_every_node() {
        let t = star();
        let cut = CutSet::new((0..3).map(EdgeId::new).collect());
        let comps = t.components(&cut).unwrap();
        assert_eq!(comps.count(), 4);
        for c in 0..4 {
            assert_eq!(comps.size(c), 1);
        }
    }
}
