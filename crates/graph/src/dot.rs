//! Graphviz DOT export for debugging and documentation.

use std::fmt::Write as _;

use crate::{CutSet, EdgeId, PathGraph, ProcessGraph, Tree};

/// Renders a tree as a Graphviz `graph`, highlighting cut edges (dashed,
/// red) if a cut is supplied.
///
/// # Examples
///
/// ```
/// use tgp_graph::{dot, Tree};
///
/// # fn main() -> Result<(), tgp_graph::GraphError> {
/// let t = Tree::from_raw(&[1, 2], &[(0, 1, 5)])?;
/// let rendered = dot::tree_to_dot(&t, None);
/// assert!(rendered.contains("graph tree"));
/// # Ok(())
/// # }
/// ```
pub fn tree_to_dot(tree: &Tree, cut: Option<&CutSet>) -> String {
    let mut out = String::from("graph tree {\n  node [shape=circle];\n");
    for (v, w) in tree.node_weights().iter().enumerate() {
        let _ = writeln!(out, "  v{v} [label=\"v{v}\\nw={w}\"];");
    }
    for (i, e) in tree.edges().iter().enumerate() {
        let style = if cut.is_some_and(|c| c.contains(EdgeId::new(i))) {
            ", style=dashed, color=red"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  v{} -- v{} [label=\"{}\"{style}];",
            e.a.index(),
            e.b.index(),
            e.weight
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a path graph as a Graphviz `graph`, highlighting cut edges if a
/// cut is supplied.
pub fn path_to_dot(path: &PathGraph, cut: Option<&CutSet>) -> String {
    let mut out = String::from("graph chain {\n  rankdir=LR;\n  node [shape=box];\n");
    for (v, w) in path.node_weights().iter().enumerate() {
        let _ = writeln!(out, "  v{v} [label=\"v{v}\\nw={w}\"];");
    }
    for (i, w) in path.edge_weights().iter().enumerate() {
        let style = if cut.is_some_and(|c| c.contains(EdgeId::new(i))) {
            ", style=dashed, color=red"
        } else {
            ""
        };
        let _ = writeln!(out, "  v{i} -- v{} [label=\"{w}\"{style}];", i + 1);
    }
    out.push_str("}\n");
    out
}

/// Renders a process graph as a Graphviz `graph`, optionally colouring
/// nodes by a part assignment (`part_of[v]` = part index).
///
/// # Panics
///
/// Panics if `part_of` is given but does not cover every node.
pub fn process_to_dot(g: &ProcessGraph, part_of: Option<&[usize]>) -> String {
    if let Some(parts) = part_of {
        assert_eq!(parts.len(), g.len(), "part assignment must cover all nodes");
    }
    const PALETTE: [&str; 8] = [
        "lightblue",
        "lightgreen",
        "lightsalmon",
        "plum",
        "khaki",
        "lightcyan",
        "lightpink",
        "lightgray",
    ];
    let mut out = String::from("graph process {\n  node [shape=ellipse, style=filled];\n");
    for (v, w) in g.node_weights().iter().enumerate() {
        let color = part_of
            .map(|p| PALETTE[p[v] % PALETTE.len()])
            .unwrap_or("white");
        let _ = writeln!(out, "  v{v} [label=\"v{v}\\nw={w}\", fillcolor={color}];");
    }
    for e in g.edges() {
        let crossing = part_of.is_some_and(|p| p[e.a.index()] != p[e.b.index()]);
        let style = if crossing {
            ", style=dashed, color=red"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  v{} -- v{} [label=\"{}\"{style}];",
            e.a.index(),
            e.b.index(),
            e.weight
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CutSet;

    #[test]
    fn tree_dot_contains_all_elements() {
        let t = Tree::from_raw(&[1, 2, 3], &[(0, 1, 10), (1, 2, 20)]).unwrap();
        let s = tree_to_dot(&t, None);
        assert!(s.starts_with("graph tree {"));
        assert!(s.contains("v0 -- v1"));
        assert!(s.contains("v1 -- v2"));
        assert!(s.contains("w=3"));
        assert!(!s.contains("dashed"));
    }

    #[test]
    fn tree_dot_marks_cut_edges() {
        let t = Tree::from_raw(&[1, 2, 3], &[(0, 1, 10), (1, 2, 20)]).unwrap();
        let cut = CutSet::new(vec![EdgeId::new(1)]);
        let s = tree_to_dot(&t, Some(&cut));
        assert_eq!(s.matches("dashed").count(), 1);
    }

    #[test]
    fn process_dot_marks_crossing_edges() {
        use crate::ProcessGraph;
        let g = ProcessGraph::from_raw(&[1, 2, 3], &[(0, 1, 4), (1, 2, 5), (2, 0, 6)]).unwrap();
        let plain = process_to_dot(&g, None);
        assert!(plain.contains("graph process"));
        assert!(!plain.contains("dashed"));
        let parts = [0usize, 0, 1];
        let colored = process_to_dot(&g, Some(&parts));
        // Edges (1,2) and (0,2) cross the part boundary.
        assert_eq!(colored.matches("dashed").count(), 2);
        assert!(colored.contains("lightblue"));
    }

    #[test]
    #[should_panic(expected = "cover all nodes")]
    fn process_dot_rejects_short_assignment() {
        use crate::ProcessGraph;
        let g = ProcessGraph::from_raw(&[1, 2], &[(0, 1, 4)]).unwrap();
        process_to_dot(&g, Some(&[0]));
    }

    #[test]
    fn path_dot_contains_all_elements() {
        let p = PathGraph::from_raw(&[1, 2, 3], &[5, 6]).unwrap();
        let cut = CutSet::new(vec![EdgeId::new(0)]);
        let s = path_to_dot(&p, Some(&cut));
        assert!(s.contains("rankdir=LR"));
        assert!(s.contains("v0 -- v1"));
        assert_eq!(s.matches("dashed").count(), 1);
    }
}
