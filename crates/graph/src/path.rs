//! Linear (path) task graphs.

use crate::{EdgeId, GraphError, NodeId, Weight};

/// A linear task graph `P = (V, E)` with `V = {v_0, …, v_{n-1}}` and
/// `E = {e_i = (v_i, v_{i+1})}`.
///
/// This is the graph class for which the paper's headline bandwidth
/// minimization algorithm applies: pipelined computations, iterative strip
/// decompositions of grids, and linear approximations of more general
/// process graphs (Section 3).
///
/// Vertex weights (`α` in the paper) model processing requirements; edge
/// weights (`β`) model communication volumes. Prefix sums over the vertex
/// weights are precomputed so that the weight of any span is an O(1) query.
///
/// # Examples
///
/// ```
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), tgp_graph::GraphError> {
/// let p = PathGraph::from_raw(&[2, 3, 5, 7], &[10, 20, 30])?;
/// assert_eq!(p.len(), 4);
/// assert_eq!(p.edge_count(), 3);
/// assert_eq!(p.span_weight(1, 2), Weight::new(8)); // v1 + v2
/// assert_eq!(p.max_node_weight(), Weight::new(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathGraph {
    node_weights: Vec<Weight>,
    edge_weights: Vec<Weight>,
    /// `prefix[i]` = sum of node weights `0..i`; length `n + 1`.
    prefix: Vec<u64>,
}

impl PathGraph {
    /// Builds a path graph from vertex and edge weight vectors.
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] if `node_weights` is empty.
    /// * [`GraphError::WrongEdgeCount`] if
    ///   `edge_weights.len() != node_weights.len() - 1`.
    /// * [`GraphError::WeightOverflow`] if the combined total of all vertex
    ///   and edge weights reaches `u64::MAX` — the constraint that keeps
    ///   every derived quantity (span weights, cut weights, DP costs)
    ///   overflow-free downstream.
    pub fn from_weights(
        node_weights: Vec<Weight>,
        edge_weights: Vec<Weight>,
    ) -> Result<Self, GraphError> {
        if node_weights.is_empty() {
            return Err(GraphError::Empty);
        }
        if edge_weights.len() != node_weights.len() - 1 {
            return Err(GraphError::WrongEdgeCount {
                nodes: node_weights.len(),
                edges: edge_weights.len(),
            });
        }
        crate::weight::check_combined_total(&node_weights, &edge_weights)?;
        let prefix = Self::build_prefix(&node_weights)?;
        Ok(PathGraph {
            node_weights,
            edge_weights,
            prefix,
        })
    }

    /// Builds a path graph from raw `u64` slices (convenience for tests and
    /// examples).
    ///
    /// # Errors
    ///
    /// Same as [`PathGraph::from_weights`].
    pub fn from_raw(node_weights: &[u64], edge_weights: &[u64]) -> Result<Self, GraphError> {
        Self::from_weights(
            node_weights.iter().copied().map(Weight::new).collect(),
            edge_weights.iter().copied().map(Weight::new).collect(),
        )
    }

    fn build_prefix(node_weights: &[Weight]) -> Result<Vec<u64>, GraphError> {
        let mut prefix = Vec::with_capacity(node_weights.len() + 1);
        prefix.push(0u64);
        let mut acc: u64 = 0;
        for w in node_weights {
            acc = acc.checked_add(w.get()).ok_or(GraphError::WeightOverflow)?;
            prefix.push(acc);
        }
        Ok(prefix)
    }

    /// Re-derives the prefix-sum cache; needed after deserializing, because
    /// the cache is skipped during serialization.
    ///
    /// # Errors
    ///
    /// [`GraphError::WeightOverflow`] if the total vertex weight does not
    /// fit in `u64`.
    pub fn rebuild_cache(&mut self) -> Result<(), GraphError> {
        self.prefix = Self::build_prefix(&self.node_weights)?;
        Ok(())
    }

    /// Number of nodes `n`.
    pub fn len(&self) -> usize {
        self.node_weights.len()
    }

    /// Always `false`: construction rejects empty graphs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of edges (`n - 1`).
    pub fn edge_count(&self) -> usize {
        self.edge_weights.len()
    }

    /// Weight `α_i` of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= self.len()`.
    pub fn node_weight(&self, node: NodeId) -> Weight {
        self.node_weights[node.index()]
    }

    /// Weight `β_i` of edge `i` (connecting nodes `i` and `i + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `edge.index() >= self.edge_count()`.
    pub fn edge_weight(&self, edge: EdgeId) -> Weight {
        self.edge_weights[edge.index()]
    }

    /// All node weights in order.
    pub fn node_weights(&self) -> &[Weight] {
        &self.node_weights
    }

    /// All edge weights in order.
    pub fn edge_weights(&self) -> &[Weight] {
        &self.edge_weights
    }

    /// Total vertex weight of the whole path.
    pub fn total_weight(&self) -> Weight {
        Weight::new(*self.prefix.last().expect("prefix never empty"))
    }

    /// The maximum single vertex weight (the feasibility floor for the load
    /// bound `K`).
    pub fn max_node_weight(&self) -> Weight {
        self.node_weights
            .iter()
            .copied()
            .max()
            .expect("path graphs are non-empty")
    }

    /// Sum of vertex weights over the inclusive span `lo..=hi`, O(1).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi >= self.len()`.
    pub fn span_weight(&self, lo: usize, hi: usize) -> Weight {
        assert!(lo <= hi, "span lo {lo} must be <= hi {hi}");
        assert!(hi < self.len(), "span hi {hi} out of range {}", self.len());
        Weight::new(self.prefix[hi + 1] - self.prefix[lo])
    }

    /// Iterates over `(NodeId, Weight)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.node_weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (NodeId::new(i), w))
    }

    /// Iterates over `(EdgeId, Weight)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Weight)> + '_ {
        self.edge_weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (EdgeId::new(i), w))
    }

    /// The two endpoints of edge `edge`: `(v_i, v_{i+1})`.
    ///
    /// # Panics
    ///
    /// Panics if `edge.index() >= self.edge_count()`.
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        assert!(
            edge.index() < self.edge_count(),
            "edge {edge} out of range {}",
            self.edge_count()
        );
        (NodeId::new(edge.index()), NodeId::new(edge.index() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PathGraph {
        PathGraph::from_raw(&[2, 3, 5, 7, 11], &[1, 2, 3, 4]).unwrap()
    }

    #[test]
    fn construction_happy_path() {
        let p = sample();
        assert_eq!(p.len(), 5);
        assert_eq!(p.edge_count(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.total_weight(), Weight::new(28));
        assert_eq!(p.max_node_weight(), Weight::new(11));
    }

    #[test]
    fn construction_rejects_empty() {
        assert_eq!(PathGraph::from_raw(&[], &[]), Err(GraphError::Empty));
    }

    #[test]
    fn construction_rejects_bad_edge_count() {
        assert_eq!(
            PathGraph::from_raw(&[1, 2], &[1, 2]),
            Err(GraphError::WrongEdgeCount { nodes: 2, edges: 2 })
        );
        assert_eq!(
            PathGraph::from_raw(&[1, 2, 3], &[1]),
            Err(GraphError::WrongEdgeCount { nodes: 3, edges: 1 })
        );
    }

    #[test]
    fn construction_rejects_overflow() {
        assert_eq!(
            PathGraph::from_raw(&[u64::MAX, 1], &[1]),
            Err(GraphError::WeightOverflow)
        );
    }

    #[test]
    fn single_node_path_is_valid() {
        let p = PathGraph::from_raw(&[9], &[]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p.total_weight(), Weight::new(9));
        assert_eq!(p.span_weight(0, 0), Weight::new(9));
    }

    #[test]
    fn span_weight_matches_manual_sum() {
        let p = sample();
        assert_eq!(p.span_weight(0, 4), Weight::new(28));
        assert_eq!(p.span_weight(1, 3), Weight::new(15));
        assert_eq!(p.span_weight(2, 2), Weight::new(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn span_weight_rejects_out_of_range() {
        sample().span_weight(0, 5);
    }

    #[test]
    #[should_panic(expected = "must be <=")]
    fn span_weight_rejects_inverted_span() {
        sample().span_weight(3, 2);
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.node_weight(NodeId::new(2)), Weight::new(5));
        assert_eq!(p.edge_weight(EdgeId::new(3)), Weight::new(4));
        assert_eq!(
            p.endpoints(EdgeId::new(2)),
            (NodeId::new(2), NodeId::new(3))
        );
        assert_eq!(p.nodes().count(), 5);
        assert_eq!(p.edges().count(), 4);
        let (last_edge, w) = p.edges().last().unwrap();
        assert_eq!(last_edge, EdgeId::new(3));
        assert_eq!(w, Weight::new(4));
    }

    #[test]
    fn rebuild_cache_recomputes_prefix_sums() {
        let p = sample();
        let mut q = PathGraph {
            node_weights: p.node_weights().to_vec(),
            edge_weights: p.edge_weights().to_vec(),
            prefix: Vec::new(),
        };
        q.rebuild_cache().unwrap();
        assert_eq!(q.total_weight(), p.total_weight());
        assert_eq!(q, p);
    }
}
