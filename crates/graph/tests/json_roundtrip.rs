//! Wire-format round trips and rejection behaviour for the in-workspace
//! JSON layer (`tgp_graph::json`), which replaces the former serde
//! derives. The encoded shapes must stay stable: the CLI, the HTTP
//! service and any stored documents all speak them.

use tgp_graph::json::{FromJson, ToJson, Value};
use tgp_graph::{CutSet, EdgeId, NodeId, PathGraph, ProcessGraph, Tree, Weight};

#[test]
fn path_graph_roundtrips_through_text() {
    let p = PathGraph::from_raw(&[2, 3, 5, 7], &[10, 20, 30]).unwrap();
    let text = p.to_json().to_string();
    let back = PathGraph::from_json(&Value::parse(&text).unwrap()).unwrap();
    assert_eq!(back, p);
    // The wire shape is the documented one.
    let v = Value::parse(&text).unwrap();
    assert_eq!(v["node_weights"].as_array().unwrap().len(), 4);
    assert_eq!(v["edge_weights"].as_array().unwrap().len(), 3);
    assert_eq!(v["node_weights"][2].as_u64(), Some(5));
}

#[test]
fn tree_roundtrips_through_text() {
    let t = Tree::from_raw(&[1, 2, 3, 4], &[(0, 1, 10), (0, 2, 20), (2, 3, 30)]).unwrap();
    let text = t.to_json().pretty();
    let back = Tree::from_json(&Value::parse(&text).unwrap()).unwrap();
    assert_eq!(back, t);
    let v = Value::parse(&text).unwrap();
    assert_eq!(v["edges"][1]["a"].as_u64(), Some(0));
    assert_eq!(v["edges"][1]["b"].as_u64(), Some(2));
    assert_eq!(v["edges"][1]["weight"].as_u64(), Some(20));
}

#[test]
fn process_graph_roundtrips_through_text() {
    let g = ProcessGraph::from_raw(&[1, 1, 1], &[(0, 1, 5), (1, 2, 7), (2, 0, 2)]).unwrap();
    let text = g.to_json().to_string();
    let back = ProcessGraph::from_json(&Value::parse(&text).unwrap()).unwrap();
    assert_eq!(back, g);
}

#[test]
fn cut_set_roundtrips_and_stays_sorted() {
    let cut = CutSet::new(vec![EdgeId::new(9), EdgeId::new(2), EdgeId::new(9)]);
    let v = Value::parse(&cut.to_json().to_string()).unwrap();
    assert_eq!(v["edges"][0].as_u64(), Some(2));
    assert_eq!(v["edges"][1].as_u64(), Some(9));
    let back = CutSet::from_json(&v).unwrap();
    assert_eq!(back, cut);
}

#[test]
fn scalars_encode_transparently() {
    assert_eq!(Weight::new(42).to_json().to_string(), "42");
    assert_eq!(NodeId::new(3).to_json().to_string(), "3");
    assert_eq!(
        Weight::from_json(&Value::parse("17").unwrap()).unwrap(),
        Weight::new(17)
    );
    assert!(Weight::from_json(&Value::parse("-1").unwrap()).is_err());
    assert!(Weight::from_json(&Value::parse("\"5\"").unwrap()).is_err());
}

#[test]
fn unknown_fields_are_tolerated() {
    let v = Value::parse(r#"{"node_weights": [1, 2], "edge_weights": [3], "comment": "extra"}"#)
        .unwrap();
    let p = PathGraph::from_json(&v).unwrap();
    assert_eq!(p.len(), 2);
}

#[test]
fn decoding_rejects_shape_errors() {
    for bad in [
        r#"{"edge_weights": [1]}"#,                   // missing node_weights
        r#"{"node_weights": 3, "edge_weights": []}"#, // not an array
        r#"{"node_weights": [1, "x"], "edge_weights": [1]}"#, // non-numeric weight
        r#"{"node_weights": [1, -2], "edge_weights": [1]}"#, // negative weight
        r#"[1, 2, 3]"#,                               // not an object
        "null",
    ] {
        let v = Value::parse(bad).unwrap();
        assert!(PathGraph::from_json(&v).is_err(), "should reject {bad}");
    }
}

#[test]
fn decoding_rejects_invariant_violations() {
    // Wrong edge count for a path.
    let v = Value::parse(r#"{"node_weights": [1, 2, 3], "edge_weights": [1]}"#).unwrap();
    assert!(PathGraph::from_json(&v).is_err());

    // Cycle in a "tree".
    let v = Value::parse(
        r#"{"node_weights": [1, 1, 1],
            "edges": [{"a": 0, "b": 1, "weight": 1}, {"a": 1, "b": 0, "weight": 1}]}"#,
    )
    .unwrap();
    assert!(Tree::from_json(&v).is_err());

    // Disconnected process graph.
    let v = Value::parse(
        r#"{"node_weights": [1, 1, 1, 1],
            "edges": [{"a": 0, "b": 1, "weight": 1}, {"a": 2, "b": 3, "weight": 1}]}"#,
    )
    .unwrap();
    assert!(ProcessGraph::from_json(&v).is_err());

    // Endpoint out of range.
    let v = Value::parse(r#"{"node_weights": [1, 1], "edges": [{"a": 0, "b": 5, "weight": 1}]}"#)
        .unwrap();
    assert!(Tree::from_json(&v).is_err());
}

#[test]
fn malformed_text_is_an_error_not_a_panic() {
    for bad in [
        "",
        "{",
        r#"{"node_weights": [1, 2], "edge_weights": [3]"#,
        "\u{0}",
        "{\"node_weights\": [1e999]}",
    ] {
        assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
    }
}

#[test]
fn weights_keep_u64_fidelity() {
    let big = u64::MAX / 2;
    let p = PathGraph::from_raw(&[big, 1], &[7]).unwrap();
    let back = PathGraph::from_json(&Value::parse(&p.to_json().to_string()).unwrap()).unwrap();
    assert_eq!(back.node_weights()[0], Weight::new(big));
}
