//! Serde round trips: graphs survive JSON (the C-SERDE contract), and the
//! skipped caches are rebuilt correctly afterwards.

use tgp_graph::{EdgeId, NodeId, PathGraph, ProcessGraph, Tree, Weight};

#[test]
fn path_graph_round_trips() {
    let p = PathGraph::from_raw(&[2, 3, 5, 7], &[10, 20, 30]).unwrap();
    let json = serde_json::to_string(&p).unwrap();
    assert!(json.contains("node_weights"));
    assert!(json.contains("edge_weights"));
    assert!(!json.contains("prefix"), "cache must not be serialized");
    let mut back: PathGraph = serde_json::from_str(&json).unwrap();
    back.rebuild_cache().unwrap();
    assert_eq!(back, p);
    assert_eq!(back.total_weight(), Weight::new(17));
    assert_eq!(back.span_weight(1, 2), Weight::new(8));
}

#[test]
fn tree_round_trips() {
    let t = Tree::from_raw(&[1, 2, 3, 4], &[(0, 1, 5), (1, 2, 6), (1, 3, 7)]).unwrap();
    let json = serde_json::to_string(&t).unwrap();
    assert!(!json.contains("adjacency"), "cache must not be serialized");
    let mut back: Tree = serde_json::from_str(&json).unwrap();
    back.rebuild_cache();
    assert_eq!(back, t);
    assert_eq!(back.degree(NodeId::new(1)), 3);
    assert_eq!(back.edge_weight(EdgeId::new(2)), Weight::new(7));
}

#[test]
fn process_graph_round_trips() {
    let g = ProcessGraph::from_raw(&[1, 1, 1], &[(0, 1, 4), (1, 2, 5), (2, 0, 6)]).unwrap();
    let json = serde_json::to_string(&g).unwrap();
    let mut back: ProcessGraph = serde_json::from_str(&json).unwrap();
    back.rebuild_cache();
    assert_eq!(back, g);
    assert_eq!(back.neighbors(NodeId::new(0)).len(), 2);
}

#[test]
fn cutset_and_ids_round_trip() {
    let cut = tgp_graph::CutSet::new(vec![EdgeId::new(3), EdgeId::new(1)]);
    let json = serde_json::to_string(&cut).unwrap();
    let back: tgp_graph::CutSet = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cut);
    let w: Weight = serde_json::from_str("42").unwrap();
    assert_eq!(w, Weight::new(42));
    let v: NodeId = serde_json::from_str("7").unwrap();
    assert_eq!(v, NodeId::new(7));
}

#[test]
fn malformed_json_is_rejected() {
    assert!(serde_json::from_str::<PathGraph>("{\"node_weights\": [1]}").is_err());
    assert!(serde_json::from_str::<Tree>("{\"oops\": true}").is_err());
}

#[test]
fn deserialization_validates_invariants() {
    // Deserialization funnels through the validating constructors
    // (#[serde(try_from = ...)]), so structurally valid JSON that breaks
    // graph invariants is rejected with the constructor's message.
    let bad_dims = "{\"node_weights\": [1, 2], \"edge_weights\": [1, 2, 3]}";
    let err = serde_json::from_str::<PathGraph>(bad_dims).unwrap_err();
    assert!(err.to_string().contains("edge"), "{err}");

    let cyclic = r#"{"node_weights": [1, 1, 1],
        "edges": [{"a": 0, "b": 1, "weight": 1},
                  {"a": 1, "b": 0, "weight": 1}]}"#;
    let err = serde_json::from_str::<Tree>(cyclic).unwrap_err();
    assert!(
        err.to_string().contains("duplicate") || err.to_string().contains("cycle"),
        "{err}"
    );

    let disconnected = r#"{"node_weights": [1, 1, 1],
        "edges": [{"a": 0, "b": 1, "weight": 1}]}"#;
    let err = serde_json::from_str::<ProcessGraph>(disconnected).unwrap_err();
    assert!(err.to_string().contains("disconnected"), "{err}");
}

#[test]
fn deserialized_graphs_are_immediately_usable() {
    // try_from runs the constructor, so caches are built — no explicit
    // rebuild_cache needed after deserializing.
    let json = serde_json::to_string(&PathGraph::from_raw(&[1, 2, 3], &[4, 5]).unwrap()).unwrap();
    let p: PathGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(p.span_weight(0, 2), Weight::new(6)); // needs the prefix cache
    let tjson = serde_json::to_string(&Tree::from_raw(&[1, 2], &[(0, 1, 3)]).unwrap()).unwrap();
    let t: Tree = serde_json::from_str(&tjson).unwrap();
    assert_eq!(t.degree(NodeId::new(0)), 1); // needs the adjacency cache
}
