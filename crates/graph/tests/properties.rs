//! Property-based tests on the graph substrate's structural invariants.

use proptest::prelude::*;

use tgp_graph::generators::WeightDist;
use tgp_graph::supergraph::{linear_supergraph, LinearOrdering};
use tgp_graph::{
    contract, CutSet, EdgeId, NodeId, PathGraph, ProcessGraph, Tree, TreeEdge, UnionFind, Weight,
};

fn arb_tree() -> impl Strategy<Value = Tree> {
    (1usize..60).prop_flat_map(|n| {
        (
            prop::collection::vec(0u64..50, n),
            prop::collection::vec((0usize..usize::MAX, 0u64..50), n - 1),
        )
            .prop_map(|(nodes, raw)| {
                let edges: Vec<TreeEdge> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &(p, w))| {
                        TreeEdge::new(NodeId::new(p % (i + 1)), NodeId::new(i + 1), Weight::new(w))
                    })
                    .collect();
                Tree::from_edges(nodes.into_iter().map(Weight::new).collect(), edges)
                    .expect("random attachment yields a tree")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Components partition the vertex set and preserve total weight.
    #[test]
    fn components_partition_the_tree(tree in arb_tree(), seed in any::<u64>()) {
        let m = tree.edge_count();
        let cut: CutSet = (0..m)
            .filter(|i| (seed >> (i % 64)) & 1 == 1)
            .map(EdgeId::new)
            .collect();
        let comps = tree.components(&cut).unwrap();
        prop_assert_eq!(comps.count(), cut.len() + 1);
        let total: Weight = comps.weights().iter().copied().sum();
        prop_assert_eq!(total, tree.total_weight());
        let sizes: usize = (0..comps.count()).map(|c| comps.size(c)).sum();
        prop_assert_eq!(sizes, tree.len());
    }

    /// Contraction preserves total weight, produces one super-node per
    /// component, and lifting the full contracted cut returns the
    /// original cut.
    #[test]
    fn contraction_invariants(tree in arb_tree(), seed in any::<u64>()) {
        let m = tree.edge_count();
        let cut: CutSet = (0..m)
            .filter(|i| (seed >> (i % 64)) & 1 == 1)
            .map(EdgeId::new)
            .collect();
        let c = contract(&tree, &cut).unwrap();
        prop_assert_eq!(c.tree().total_weight(), tree.total_weight());
        prop_assert_eq!(c.tree().len(), cut.len() + 1);
        prop_assert_eq!(c.tree().edge_count(), cut.len());
        let all: CutSet = (0..c.tree().edge_count()).map(EdgeId::new).collect();
        prop_assert_eq!(c.lift_cut(&all), cut.clone());
        // Every node maps into a valid super-node of matching component.
        let comps = c.components();
        for v in 0..tree.len() {
            let sup = c.super_node_of(NodeId::new(v));
            prop_assert_eq!(sup.index(), comps.component_of(NodeId::new(v)));
        }
    }

    /// Post-order visits every node exactly once, children before parents.
    #[test]
    fn post_order_is_a_permutation(tree in arb_tree(), root_seed in any::<usize>()) {
        let root = NodeId::new(root_seed % tree.len());
        let order = tree.post_order(root);
        prop_assert_eq!(order.len(), tree.len());
        let mut pos = vec![usize::MAX; tree.len()];
        for (i, v) in order.iter().enumerate() {
            prop_assert_eq!(pos[v.index()], usize::MAX);
            pos[v.index()] = i;
        }
        let parents = tree.parents(root);
        for v in 0..tree.len() {
            if let Some((p, _)) = parents[v] {
                prop_assert!(pos[v] < pos[p.index()], "child before parent");
            }
        }
        prop_assert_eq!(order.last().copied(), Some(root));
    }

    /// The linear super-graph preserves total vertex weight under any
    /// ordering, and its segments' cut cost upper-bounds nothing weirdly:
    /// every boundary weight equals the crossing weight of that position
    /// split.
    #[test]
    fn supergraph_boundaries_match_crossings(
        n in 3usize..30,
        extra_edges in prop::collection::vec((0usize..100, 0usize..100, 1u64..20), 0..40),
        ordering_bfs in any::<bool>(),
    ) {
        // Build a connected process graph: a ring + random chords.
        let mut edges: Vec<(usize, usize, u64)> =
            (0..n).map(|i| (i, (i + 1) % n, 1 + i as u64)).collect();
        for &(a, b, w) in &extra_edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                edges.push((a, b, w));
            }
        }
        let nodes: Vec<u64> = (1..=n as u64).collect();
        let g = ProcessGraph::from_raw(&nodes, &edges).unwrap();
        let ordering = if ordering_bfs {
            LinearOrdering::BfsFromPeriphery
        } else {
            LinearOrdering::Identity
        };
        let sup = linear_supergraph(&g, ordering).unwrap();
        prop_assert_eq!(sup.path().total_weight(), g.total_weight());
        // Check each boundary against a direct recount.
        for b in 0..sup.path().edge_count() {
            let expected: u64 = g
                .edges()
                .iter()
                .filter(|e| {
                    let pa = sup.position_of(e.a);
                    let pb = sup.position_of(e.b);
                    pa.min(pb) <= b && b < pa.max(pb)
                })
                .map(|e| e.weight.get())
                .sum();
            prop_assert_eq!(sup.path().edge_weights()[b].get(), expected);
        }
    }

    /// Union-find agrees with a reachability oracle built from the same
    /// union sequence.
    #[test]
    fn union_find_matches_reachability(
        n in 1usize..40,
        unions in prop::collection::vec((0usize..100, 0usize..100), 0..80),
    ) {
        let mut uf = UnionFind::new(n);
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &unions {
            let (a, b) = (a % n, b % n);
            uf.union(a, b);
            adj[a].push(b);
            adj[b].push(a);
        }
        // BFS-based components.
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let mut stack = vec![s];
            comp[s] = next;
            while let Some(v) = stack.pop() {
                for &u in &adj[v] {
                    if comp[u] == usize::MAX {
                        comp[u] = next;
                        stack.push(u);
                    }
                }
            }
            next += 1;
        }
        prop_assert_eq!(uf.component_count(), next);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(uf.same_set(a, b), comp[a] == comp[b]);
            }
        }
    }

    /// Path segments reassemble the chain exactly.
    #[test]
    fn segments_tile_the_path(
        nodes in prop::collection::vec(1u64..50, 1..80),
        seed in any::<u64>(),
    ) {
        let edges = vec![1u64; nodes.len() - 1];
        let p = PathGraph::from_raw(&nodes, &edges).unwrap();
        let cut: CutSet = (0..p.edge_count())
            .filter(|i| (seed >> (i % 64)) & 1 == 1)
            .map(EdgeId::new)
            .collect();
        let segs = p.segments(&cut).unwrap();
        prop_assert_eq!(segs.len(), cut.len() + 1);
        prop_assert_eq!(segs[0].start, 0);
        prop_assert_eq!(segs.last().unwrap().end, p.len() - 1);
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].end + 1, w[1].start);
        }
        let total: Weight = segs.iter().map(|s| s.weight).sum();
        prop_assert_eq!(total, p.total_weight());
    }
}

#[test]
fn weight_dist_sampling_is_exercised_via_generators() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tgp_graph::generators::{balanced_binary, caterpillar, random_chain, star};
    let mut rng = SmallRng::seed_from_u64(5);
    let d = WeightDist::Uniform { lo: 1, hi: 9 };
    assert_eq!(random_chain(10, d, d, &mut rng).len(), 10);
    assert_eq!(star(10, d, d, &mut rng).leaves().count(), 9);
    assert_eq!(caterpillar(3, 2, d, d, &mut rng).len(), 9);
    assert_eq!(balanced_binary(2, d, d, &mut rng).len(), 7);
}
