//! Vendored, dependency-free stand-in for the slice of the `criterion`
//! API the workspace's benches use.
//!
//! The build environment has no crates.io access, so this crate provides
//! the same entry points (`criterion_group!`, `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`BenchmarkId`]) backed by a plain wall-clock
//! harness: warm up for `warm_up_time`, then take `sample_size` samples
//! inside `measurement_time` and report the median, minimum and maximum
//! time per iteration. No statistics beyond that, no plots, no baselines —
//! numbers land on stdout and in BENCH logs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle; one per `criterion_group!` run.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let group = BenchmarkGroup {
            name: String::new(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
        };
        group.run_one(&id.to_string(), &mut f);
    }
}

/// A named set of benchmarks sharing timing parameters.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Times `f` and prints one result line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        self.run_one(&label, &mut f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: &str, f: &mut F) {
        // Warm-up pass: run until the warm-up budget elapses, counting
        // iterations so the measurement pass can size its batches.
        let mut bencher = Bencher {
            mode: Mode::Warmup {
                until: Instant::now() + self.warm_up_time,
            },
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters_done > 0 {
            bencher.elapsed.div_f64(bencher.iters_done as f64)
        } else {
            Duration::from_millis(1)
        };
        let budget = self.measurement_time.div_f64(self.sample_size as f64);
        let batch = (budget.as_secs_f64() / per_iter.as_secs_f64().max(1e-9))
            .round()
            .max(1.0) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                mode: Mode::Measure { batch },
                iters_done: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            if bencher.iters_done > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iters_done as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let min = samples.first().copied().unwrap_or(0.0);
        let max = samples.last().copied().unwrap_or(0.0);
        println!(
            "{label:<40} time: [{} {} {}]  ({} samples, {batch} iters/sample)",
            fmt_secs(min),
            fmt_secs(median),
            fmt_secs(max),
            samples.len(),
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Warmup { until: Instant },
    Measure { batch: u64 },
}

/// Passed to the closure under test; call [`Bencher::iter`] with the
/// workload.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f` according to the current phase.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Warmup { until } => {
                let start = Instant::now();
                while Instant::now() < until {
                    black_box(f());
                    self.iters_done += 1;
                }
                self.elapsed = start.elapsed();
            }
            Mode::Measure { batch } => {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                self.elapsed = start.elapsed();
                self.iters_done = batch;
            }
        }
    }
}

/// A benchmark label of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds the id `"{function}/{parameter}"`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a group runner function calling each benchmark in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(15));
        for n in [10u64, 100] {
            group.bench_function(BenchmarkId::new("sum", n), |b| {
                b.iter(|| (0..black_box(n)).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_trivial);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        assert_eq!(BenchmarkId::new("opt", 1000).to_string(), "opt/1000");
    }
}
