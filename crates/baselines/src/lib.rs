//! Prior-work baselines the reproduced paper compares against.
//!
//! * [`bokhari`] — Bokhari (1988): exact minimax chain partitioning onto a
//!   linear processor array via the layered-graph dynamic program.
//! * [`hansen_lih`] — Hansen & Lih (1992) style: the same problem solved
//!   exactly by bottleneck binary search with a linear-sweep probe.
//! * [`hetero`] — Bokhari's non-homogeneous case: chain partitioning over
//!   processors of different speeds.
//! * [`host_satellite`] — Bokhari's single-host / multiple-satellite tree
//!   partitioning (the polynomial tree case the paper cites in §1).
//! * [`nicol`] — Nicol & O'Hallaron (1991): `O(n log n)` bandwidth
//!   minimization on shared memory — the direct comparator for the
//!   paper's `O(n + p log q)` TEMP_S algorithm.
//! * [`block`] — naive equal-count block splitting, the quality strawman.
//!
//! Where the original pseudo-code is not contained in the reproduced
//! paper text, the algorithms are reconstructed from their published
//! recurrences/complexity contracts and cross-verified against each other
//! and against brute force (see each module's docs and DESIGN.md §5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod bokhari;
pub mod coc;
pub mod hansen_lih;
pub mod hetero;
pub mod host_satellite;
pub mod nicol;

pub use bokhari::{bokhari_partition, bokhari_partition_at_most, CocResult};
pub use coc::{ChainAssignment, CocError};
pub use hansen_lih::hansen_lih_partition;
pub use hetero::{hetero_partition, HeteroArray};
pub use host_satellite::{host_satellite_partition, HostSatelliteResult};
pub use nicol::nicol_bandwidth_cut;
