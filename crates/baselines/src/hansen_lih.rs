//! A probe-based exact chains-on-chains partitioner (Hansen & Lih 1992
//! style).
//!
//! Hansen & Lih improved Bokhari's algorithm with "a different, more
//! lucid" approach (as the reproduced paper puts it). Their exact
//! pseudo-code is not in the reproduced text, so this module reconstructs
//! an exact probe method in that spirit: binary-search the bottleneck
//! value `B`, checking feasibility of each candidate with a linear sweep.
//!
//! The feasibility check uses the identity
//! `cost(s+1..t) ≤ B  ⟺  β_s − P[s+1] ≤ B − β̂_t − P[t+1]`
//! (`P` = vertex-weight prefix sums, `β̂_t` = right boundary edge or 0 at
//! the chain end), so each processor layer is a single sweep maintaining a
//! running prefix minimum of `A(s) = β_s − P[s+1]` over feasible ends:
//! `O(n·m)` per probe, `O(n·m·log Σw)` overall. Results are verified to
//! match [`crate::bokhari::bokhari_partition`] exactly.

#![allow(clippy::needless_range_loop)] // index-based DP reads clearer here

use tgp_graph::{PathGraph, Weight};

use crate::bokhari::CocResult;
use crate::coc::{segment_cost, ChainAssignment, CocError};

/// `A(s) = β_s − P[s+1]` as an `i128` (can be negative).
fn a_value(path: &PathGraph, s: usize) -> i128 {
    let beta = i128::from(path.edge_weights()[s].get());
    let prefix = i128::from(path.span_weight(0, s).get());
    beta - prefix
}

/// Right-hand side `B − β̂_t − P[t+1]`.
fn rhs(path: &PathGraph, bound: u64, t: usize) -> i128 {
    let n = path.len();
    let beta_hat = if t < n - 1 {
        i128::from(path.edge_weights()[t].get())
    } else {
        0
    };
    i128::from(bound) - beta_hat - i128::from(path.span_weight(0, t).get())
}

/// Feasibility probe: can modules be split into exactly `m` non-empty
/// blocks, each of cost at most `bound`? Returns the per-layer
/// feasible-end sets for reconstruction when feasible.
fn probe(path: &PathGraph, m: usize, bound: u64) -> Option<Vec<Vec<bool>>> {
    let n = path.len();
    let mut layers: Vec<Vec<bool>> = Vec::with_capacity(m);
    // Layer 0: block 0..=t fits?
    let mut layer0 = vec![false; n];
    for (t, slot) in layer0.iter_mut().enumerate() {
        let beta_hat = if t < n - 1 {
            path.edge_weights()[t].get()
        } else {
            0
        };
        *slot = path.span_weight(0, t).get().saturating_add(beta_hat) <= bound;
    }
    layers.push(layer0);
    for _ in 1..m {
        let prev = layers.last().expect("at least layer 0");
        let mut next = vec![false; n];
        // min_a = min A(s) over feasible s seen so far (s < t).
        let mut min_a = i128::MAX;
        for t in 1..n {
            let s = t - 1;
            if prev[s] {
                min_a = min_a.min(a_value(path, s));
            }
            next[t] = min_a <= rhs(path, bound, t);
        }
        layers.push(next);
    }
    if layers[m - 1][n - 1] {
        Some(layers)
    } else {
        None
    }
}

fn reconstruct(path: &PathGraph, layers: &[Vec<bool>], bound: u64) -> ChainAssignment {
    let n = path.len();
    let m = layers.len();
    let mut boundaries = Vec::with_capacity(m - 1);
    let mut t = n - 1;
    for j in (1..m).rev() {
        let s = (0..t)
            .rev()
            .find(|&s| layers[j - 1][s] && segment_cost(path, s + 1, t).get() <= bound)
            .expect("probe succeeded, so a witness split exists");
        boundaries.push(s + 1);
        t = s;
    }
    boundaries.reverse();
    ChainAssignment::new(boundaries)
}

/// Exact minimax chain partition over exactly `m` processors by binary
/// search on the bottleneck with a linear-sweep probe:
/// `O(n·m·log Σw)` time.
///
/// Always returns the same bottleneck value as
/// [`crate::bokhari::bokhari_partition`].
///
/// # Errors
///
/// [`CocError::BadProcessorCount`] unless `1 ≤ m ≤ n`.
///
/// # Examples
///
/// ```
/// use tgp_baselines::hansen_lih::hansen_lih_partition;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let chain = PathGraph::from_raw(&[5, 5, 5, 5], &[1, 1, 1])?;
/// let r = hansen_lih_partition(&chain, 2)?;
/// assert_eq!(r.bottleneck, Weight::new(11));
/// # Ok(())
/// # }
/// ```
pub fn hansen_lih_partition(path: &PathGraph, m: usize) -> Result<CocResult, CocError> {
    let n = path.len();
    if m < 1 || m > n {
        return Err(CocError::BadProcessorCount { n, m });
    }
    let max_edge = path
        .edge_weights()
        .iter()
        .map(|w| w.get())
        .max()
        .unwrap_or(0);
    let mut lo = 0u64;
    let mut hi = path.total_weight().get().saturating_add(2 * max_edge);
    debug_assert!(probe(path, m, hi).is_some());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(path, m, mid).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let layers = probe(path, m, lo).expect("lo is feasible by construction");
    let assignment = reconstruct(path, &layers, lo);
    debug_assert_eq!(assignment.bottleneck(path).get(), lo);
    Ok(CocResult {
        assignment,
        bottleneck: Weight::new(lo),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bokhari::bokhari_partition;

    #[test]
    fn rejects_bad_processor_counts() {
        let p = PathGraph::from_raw(&[1, 2], &[3]).unwrap();
        assert!(hansen_lih_partition(&p, 0).is_err());
        assert!(hansen_lih_partition(&p, 5).is_err());
    }

    #[test]
    fn single_processor_and_full_isolation() {
        let p = PathGraph::from_raw(&[4, 4, 4], &[1, 1]).unwrap();
        assert_eq!(
            hansen_lih_partition(&p, 1).unwrap().bottleneck,
            Weight::new(12)
        );
        assert_eq!(
            hansen_lih_partition(&p, 3).unwrap().bottleneck,
            Weight::new(6)
        );
    }

    #[test]
    fn communication_steers_the_split() {
        let p = PathGraph::from_raw(&[4, 4, 4, 4], &[100, 1, 100]).unwrap();
        let r = hansen_lih_partition(&p, 2).unwrap();
        assert_eq!(r.assignment.boundaries(), &[2]);
        assert_eq!(r.bottleneck, Weight::new(9));
    }

    #[test]
    fn matches_bokhari_everywhere() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5150);
        for _ in 0..80 {
            let n = rng.gen_range(1..40);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..50)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..50)).collect();
            let p = PathGraph::from_raw(&nodes, &edges).unwrap();
            for m in [1, 2, 3, n / 2, n]
                .into_iter()
                .filter(|&m| (1..=n).contains(&m))
            {
                let a = hansen_lih_partition(&p, m).unwrap();
                let b = bokhari_partition(&p, m).unwrap();
                assert_eq!(
                    a.bottleneck, b.bottleneck,
                    "nodes={nodes:?} edges={edges:?} m={m}"
                );
                // The reconstructed assignment achieves the claimed value.
                assert_eq!(a.assignment.bottleneck(&p), a.bottleneck);
            }
        }
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let p = PathGraph::from_raw(&[3, 3, 3, 3], &[0, 0, 0]).unwrap();
        let r = hansen_lih_partition(&p, 2).unwrap();
        assert_eq!(r.bottleneck, Weight::new(6));
    }
}
