//! Bokhari's non-homogeneous case: chain partitioning over processors of
//! different speeds.
//!
//! Bokhari (1988) "considered the problem for both homogeneous and
//! non-homogeneous processors" (reproduced paper, §1). Here the linear
//! array's processor `j` has speed `s_j`; a block's execution time is its
//! computation divided by the speed of the processor it lands on (rounded
//! up), plus its boundary communication (the interconnect is uniform, as
//! everywhere in this workspace). Because blocks are assigned to
//! processors *in chain order*, the layered-graph DP carries over with a
//! speed-indexed layer: `O(n²m)` exactly as in the homogeneous case.

#![allow(clippy::needless_range_loop)] // index-based DP reads clearer here

use tgp_graph::{PathGraph, Weight};

use crate::bokhari::CocResult;
use crate::coc::{ChainAssignment, CocError};

/// A linear array of processors with per-processor speeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeteroArray {
    speeds: Vec<u64>,
}

impl HeteroArray {
    /// Creates an array from per-processor speeds (work units per time
    /// unit), in chain order.
    ///
    /// # Panics
    ///
    /// Panics if `speeds` is empty or any speed is zero.
    pub fn new(speeds: Vec<u64>) -> Self {
        assert!(!speeds.is_empty(), "at least one processor is required");
        assert!(
            speeds.iter().all(|&s| s > 0),
            "processor speeds must be positive"
        );
        HeteroArray { speeds }
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Speed of processor `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn speed(&self, j: usize) -> u64 {
        self.speeds[j]
    }

    /// The time processor `j` spends on block `[s, t]` of `path`:
    /// `ceil(computation / speed_j)` plus the boundary edges (transferred
    /// at unit bandwidth).
    pub fn block_time(&self, path: &PathGraph, j: usize, s: usize, t: usize) -> u64 {
        let n = path.len();
        let mut cost = path.span_weight(s, t).get().div_ceil(self.speeds[j]);
        if s > 0 {
            cost += path.edge_weights()[s - 1].get();
        }
        if t < n - 1 {
            cost += path.edge_weights()[t].get();
        }
        cost
    }

    /// Bottleneck of an assignment on this array.
    ///
    /// # Panics
    ///
    /// Panics if the assignment has more blocks than processors.
    pub fn bottleneck(&self, path: &PathGraph, assignment: &ChainAssignment) -> u64 {
        assert!(assignment.processors() <= self.len());
        (0..assignment.processors())
            .map(|j| {
                let (s, t) = assignment.block(j, path.len());
                self.block_time(path, j, s, t)
            })
            .max()
            .expect("at least one block")
    }
}

/// Exact minimax chain partition onto a heterogeneous linear array
/// (blocks assigned to processors in order): `O(n²m)` layered-graph DP.
///
/// # Errors
///
/// [`CocError::BadProcessorCount`] unless `1 ≤ array.len() ≤ n`.
///
/// # Examples
///
/// ```
/// use tgp_baselines::hetero::{hetero_partition, HeteroArray};
/// use tgp_graph::PathGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let chain = PathGraph::from_raw(&[8, 8, 8, 8], &[0, 0, 0])?;
/// // A fast processor followed by a slow one: the fast one takes more.
/// let array = HeteroArray::new(vec![4, 1]);
/// let r = hetero_partition(&chain, &array)?;
/// assert_eq!(r.assignment.boundaries(), &[3]);
/// assert_eq!(r.bottleneck, tgp_graph::Weight::new(8)); // 24/4 vs 8/1
/// # Ok(())
/// # }
/// ```
pub fn hetero_partition(path: &PathGraph, array: &HeteroArray) -> Result<CocResult, CocError> {
    let n = path.len();
    let m = array.len();
    if m < 1 || m > n {
        return Err(CocError::BadProcessorCount { n, m });
    }
    const INF: u64 = u64::MAX;
    let mut dp = vec![vec![INF; n]; m];
    let mut split = vec![vec![usize::MAX; n]; m];
    for t in 0..n {
        dp[0][t] = array.block_time(path, 0, 0, t);
    }
    for j in 1..m {
        for t in j..n {
            let mut best = INF;
            let mut best_s = usize::MAX;
            for s in j..=t {
                let prev = dp[j - 1][s - 1];
                if prev == INF {
                    continue;
                }
                let cost = prev.max(array.block_time(path, j, s, t));
                if cost < best {
                    best = cost;
                    best_s = s;
                }
            }
            dp[j][t] = best;
            split[j][t] = best_s;
        }
    }
    let bottleneck = dp[m - 1][n - 1];
    debug_assert_ne!(bottleneck, INF);
    let mut boundaries = Vec::with_capacity(m - 1);
    let mut t = n - 1;
    for j in (1..m).rev() {
        let s = split[j][t];
        boundaries.push(s);
        t = s - 1;
    }
    boundaries.reverse();
    let assignment = ChainAssignment::new(boundaries);
    debug_assert_eq!(array.bottleneck(path, &assignment), bottleneck);
    Ok(CocResult {
        assignment,
        bottleneck: Weight::new(bottleneck),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bokhari::bokhari_partition;

    fn brute(path: &PathGraph, array: &HeteroArray) -> u64 {
        fn rec(
            path: &PathGraph,
            array: &HeteroArray,
            boundaries: &mut Vec<usize>,
            next: usize,
            remaining: usize,
            best: &mut u64,
        ) {
            let n = path.len();
            if remaining == 0 {
                let a = ChainAssignment::new(boundaries.clone());
                *best = (*best).min(array.bottleneck(path, &a));
                return;
            }
            for b in next..=(n - remaining) {
                boundaries.push(b);
                rec(path, array, boundaries, b + 1, remaining - 1, best);
                boundaries.pop();
            }
        }
        let mut best = u64::MAX;
        rec(path, array, &mut Vec::new(), 1, array.len() - 1, &mut best);
        best
    }

    #[test]
    fn unit_speeds_reduce_to_bokhari() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x4E7);
        for _ in 0..40 {
            let n: usize = rng.gen_range(1..20);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..30)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..30)).collect();
            let p = PathGraph::from_raw(&nodes, &edges).unwrap();
            let m = rng.gen_range(1..=n);
            let hetero = hetero_partition(&p, &HeteroArray::new(vec![1; m])).unwrap();
            let homo = bokhari_partition(&p, m).unwrap();
            assert_eq!(hetero.bottleneck, homo.bottleneck, "n={n} m={m}");
        }
    }

    #[test]
    fn matches_brute_force_with_mixed_speeds() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x4E8);
        for _ in 0..60 {
            let n: usize = rng.gen_range(1..9);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..40)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..20)).collect();
            let p = PathGraph::from_raw(&nodes, &edges).unwrap();
            let m = rng.gen_range(1..=n);
            let speeds: Vec<u64> = (0..m).map(|_| rng.gen_range(1..5)).collect();
            let array = HeteroArray::new(speeds.clone());
            let r = hetero_partition(&p, &array).unwrap();
            assert_eq!(
                r.bottleneck.get(),
                brute(&p, &array),
                "nodes={nodes:?} edges={edges:?} speeds={speeds:?}"
            );
        }
    }

    #[test]
    fn fast_processor_takes_the_bigger_block() {
        let p = PathGraph::from_raw(&[6, 6, 6, 6, 6, 6], &[0, 0, 0, 0, 0]).unwrap();
        let array = HeteroArray::new(vec![2, 1]);
        let r = hetero_partition(&p, &array).unwrap();
        // Fast (speed 2) should take 4 modules (24/2 = 12), slow takes 2
        // (12/1 = 12): perfectly balanced.
        assert_eq!(r.assignment.boundaries(), &[4]);
        assert_eq!(r.bottleneck, Weight::new(12));
    }

    #[test]
    fn rejects_bad_processor_counts() {
        let p = PathGraph::from_raw(&[1, 2], &[3]).unwrap();
        assert!(hetero_partition(&p, &HeteroArray::new(vec![1, 1, 1])).is_err());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_speed_panics() {
        HeteroArray::new(vec![1, 0]);
    }
}
