//! Naive block partitioning — the "no algorithm" strawman.
//!
//! Splits a chain into blocks of (nearly) equal *node count*, ignoring
//! weights entirely. Used by the applications and benches to show how much
//! the weight-aware algorithms actually buy.

use tgp_graph::{CutSet, EdgeId, PathGraph};

/// Cuts `path` into `blocks` contiguous pieces of near-equal node count
/// (the first `n % blocks` pieces get one extra node).
///
/// Returns the cut edges; `blocks >= n` isolates every node.
///
/// # Panics
///
/// Panics if `blocks == 0`.
///
/// # Examples
///
/// ```
/// use tgp_baselines::block::block_partition;
/// use tgp_graph::PathGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = PathGraph::from_raw(&[1, 1, 1, 1, 1, 1], &[1, 1, 1, 1, 1])?;
/// let cut = block_partition(&p, 3);
/// assert_eq!(cut.len(), 2);
/// assert_eq!(p.segments(&cut)?.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn block_partition(path: &PathGraph, blocks: usize) -> CutSet {
    assert!(blocks > 0, "at least one block is required");
    let n = path.len();
    let blocks = blocks.min(n);
    let base = n / blocks;
    let extra = n % blocks;
    let mut edges = Vec::with_capacity(blocks - 1);
    let mut pos = 0usize;
    for b in 0..blocks - 1 {
        pos += base + usize::from(b < extra);
        edges.push(EdgeId::new(pos - 1));
    }
    CutSet::new(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let p = PathGraph::from_raw(&[1; 6], &[1; 5]).unwrap();
        let cut = block_partition(&p, 2);
        let segs = p.segments(&cut).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].len(), 3);
        assert_eq!(segs[1].len(), 3);
    }

    #[test]
    fn remainder_goes_to_early_blocks() {
        let p = PathGraph::from_raw(&[1; 7], &[1; 6]).unwrap();
        let segs = p.segments(&block_partition(&p, 3)).unwrap();
        let lens: Vec<usize> = segs.iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![3, 2, 2]);
    }

    #[test]
    fn more_blocks_than_nodes_isolates_all() {
        let p = PathGraph::from_raw(&[1; 3], &[1; 2]).unwrap();
        let segs = p.segments(&block_partition(&p, 10)).unwrap();
        assert_eq!(segs.len(), 3);
    }

    #[test]
    fn one_block_cuts_nothing() {
        let p = PathGraph::from_raw(&[1; 4], &[1; 3]).unwrap();
        assert!(block_partition(&p, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let p = PathGraph::from_raw(&[1], &[]).unwrap();
        block_partition(&p, 0);
    }
}
