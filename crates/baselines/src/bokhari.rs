//! Bokhari's layered-graph partitioning (IEEE ToC 1988).
//!
//! Bokhari partitions a chain of `n` modules over `m` processors of a
//! linear array, minimizing the bottleneck (maximum per-processor
//! computation + boundary communication). His original algorithm builds a
//! layered graph whose `O(n²m)` arcs encode all `(block, processor)`
//! choices and extracts a minimax path in `O(n³m)` time.
//!
//! [`bokhari_partition`] evaluates exactly that layered graph by dynamic
//! programming, using prefix sums for O(1) block costs — the standard
//! presentation of Bokhari's method, `O(n²m)` time and `O(nm)` space. It
//! is the exact reference the faster baselines are verified against.

#![allow(clippy::needless_range_loop)] // index-based DP reads clearer here

use tgp_graph::{PathGraph, Weight};

use crate::coc::{segment_cost, ChainAssignment, CocError};

/// Result of a chains-on-chains bottleneck partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CocResult {
    /// The optimal assignment of modules to processors.
    pub assignment: ChainAssignment,
    /// Its bottleneck value.
    pub bottleneck: Weight,
}

/// Bokhari's layered-graph algorithm: exact minimax chain partition over
/// `m` processors, `O(n²m)` time.
///
/// # Errors
///
/// [`CocError::BadProcessorCount`] unless `1 ≤ m ≤ n`.
///
/// # Examples
///
/// ```
/// use tgp_baselines::bokhari::bokhari_partition;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let chain = PathGraph::from_raw(&[5, 5, 5, 5], &[1, 1, 1])?;
/// let r = bokhari_partition(&chain, 2)?;
/// assert_eq!(r.bottleneck, Weight::new(11)); // 5+5 plus one boundary edge
/// # Ok(())
/// # }
/// ```
pub fn bokhari_partition(path: &PathGraph, m: usize) -> Result<CocResult, CocError> {
    let n = path.len();
    if m < 1 || m > n {
        return Err(CocError::BadProcessorCount { n, m });
    }
    const INF: u64 = u64::MAX;
    // dp[j][t] = minimal bottleneck assigning modules 0..=t to j+1
    // processors (layer j of Bokhari's graph); split[j][t] reconstructs.
    let mut dp = vec![vec![INF; n]; m];
    let mut split = vec![vec![usize::MAX; n]; m];
    for t in 0..n {
        dp[0][t] = segment_cost(path, 0, t).get();
    }
    for j in 1..m {
        for t in j..n {
            // Last block is s..=t; previous blocks cover 0..=s-1 with j
            // processors: s ranges over j..=t.
            let mut best = INF;
            let mut best_s = usize::MAX;
            for s in j..=t {
                let prev = dp[j - 1][s - 1];
                if prev == INF {
                    continue;
                }
                let cost = prev.max(segment_cost(path, s, t).get());
                if cost < best {
                    best = cost;
                    best_s = s;
                }
            }
            dp[j][t] = best;
            split[j][t] = best_s;
        }
    }
    let bottleneck = dp[m - 1][n - 1];
    debug_assert_ne!(bottleneck, INF, "m <= n guarantees a valid assignment");
    // Reconstruct boundaries right to left.
    let mut boundaries = Vec::with_capacity(m - 1);
    let mut t = n - 1;
    for j in (1..m).rev() {
        let s = split[j][t];
        boundaries.push(s);
        t = s - 1;
    }
    boundaries.reverse();
    let assignment = ChainAssignment::new(boundaries);
    debug_assert_eq!(assignment.bottleneck(path).get(), bottleneck);
    Ok(CocResult {
        assignment,
        bottleneck: Weight::new(bottleneck),
    })
}

/// Bokhari's problem with "at most `m` processors" semantics: because a
/// block pays for its boundary communication, using *fewer* processors is
/// sometimes strictly better; this wrapper returns the best exact-`j`
/// solution over `1 ≤ j ≤ min(m, n)`.
///
/// # Errors
///
/// [`CocError::BadProcessorCount`] if `m == 0`.
///
/// # Examples
///
/// ```
/// use tgp_baselines::bokhari::bokhari_partition_at_most;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Splitting this chain anywhere costs more than running it whole.
/// let chain = PathGraph::from_raw(&[3, 3], &[100])?;
/// let r = bokhari_partition_at_most(&chain, 2)?;
/// assert_eq!(r.assignment.processors(), 1);
/// assert_eq!(r.bottleneck, Weight::new(6));
/// # Ok(())
/// # }
/// ```
pub fn bokhari_partition_at_most(path: &PathGraph, m: usize) -> Result<CocResult, CocError> {
    let n = path.len();
    if m == 0 {
        return Err(CocError::BadProcessorCount { n, m });
    }
    let mut best: Option<CocResult> = None;
    for j in 1..=m.min(n) {
        let r = bokhari_partition(path, j)?;
        if best.as_ref().is_none_or(|b| r.bottleneck < b.bottleneck) {
            best = Some(r);
        }
    }
    Ok(best.expect("j = 1 always succeeds"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coc::brute_force_bottleneck;

    #[test]
    fn rejects_bad_processor_counts() {
        let p = PathGraph::from_raw(&[1, 2], &[3]).unwrap();
        assert!(matches!(
            bokhari_partition(&p, 0),
            Err(CocError::BadProcessorCount { .. })
        ));
        assert!(matches!(
            bokhari_partition(&p, 3),
            Err(CocError::BadProcessorCount { .. })
        ));
    }

    #[test]
    fn one_processor_takes_everything() {
        let p = PathGraph::from_raw(&[1, 2, 3], &[9, 9]).unwrap();
        let r = bokhari_partition(&p, 1).unwrap();
        assert_eq!(r.assignment.processors(), 1);
        assert_eq!(r.bottleneck, Weight::new(6));
    }

    #[test]
    fn n_processors_isolate_every_module() {
        let p = PathGraph::from_raw(&[4, 4, 4], &[1, 1]).unwrap();
        let r = bokhari_partition(&p, 3).unwrap();
        assert_eq!(r.assignment.processors(), 3);
        assert_eq!(r.bottleneck, Weight::new(6)); // middle: 4 + 1 + 1
    }

    #[test]
    fn communication_steers_the_split() {
        // Splitting at the cheap edge beats the balanced split.
        let p = PathGraph::from_raw(&[4, 4, 4, 4], &[100, 1, 100]).unwrap();
        let r = bokhari_partition(&p, 2).unwrap();
        assert_eq!(r.assignment.boundaries(), &[2]);
        assert_eq!(r.bottleneck, Weight::new(9)); // 4+4 plus edge 1
    }

    #[test]
    fn at_most_semantics_can_beat_exact() {
        // Heavy boundary edges punish splitting.
        let p = PathGraph::from_raw(&[3, 3, 3], &[100, 100]).unwrap();
        let exact = bokhari_partition(&p, 3).unwrap();
        let at_most = bokhari_partition_at_most(&p, 3).unwrap();
        assert_eq!(at_most.assignment.processors(), 1);
        assert!(at_most.bottleneck < exact.bottleneck);
    }

    #[test]
    fn at_most_is_monotone_in_m() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xA7);
        for _ in 0..30 {
            let n: usize = rng.gen_range(1..15);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..30)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..30)).collect();
            let p = PathGraph::from_raw(&nodes, &edges).unwrap();
            let mut prev = None;
            for m in 1..=n + 2 {
                let r = bokhari_partition_at_most(&p, m).unwrap();
                if let Some(prev) = prev {
                    assert!(r.bottleneck <= prev);
                }
                prev = Some(r.bottleneck);
            }
        }
    }

    #[test]
    fn matches_brute_force() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..120 {
            let n = rng.gen_range(1..9);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..20)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..20)).collect();
            let p = PathGraph::from_raw(&nodes, &edges).unwrap();
            for m in 1..=n {
                let r = bokhari_partition(&p, m).unwrap();
                let expect = brute_force_bottleneck(&p, m).unwrap();
                assert_eq!(
                    r.bottleneck, expect,
                    "nodes={nodes:?} edges={edges:?} m={m}"
                );
            }
        }
    }
}
