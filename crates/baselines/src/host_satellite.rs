//! Bokhari's host-satellite partitioning of tree task graphs.
//!
//! The reproduced paper notes (§1) that "Bokhari's bottleneck minimization
//! problem takes polynomial time when the task graph is a tree and the
//! target architecture is a single host multiple (identical) satellite
//! system". In that architecture satellites communicate *only* with the
//! host, so each satellite must receive a complete subtree of the rooted
//! task graph; the host keeps the rest. A satellite's cost is its
//! subtree's computation plus the communication over its uplink (the cut
//! edge); the host's cost is the remaining computation. The objective is
//! to minimize the bottleneck using at most `m` satellites.
//!
//! Reconstruction (Bokhari's exact pseudo-code is not in the reproduced
//! text): binary-search the bottleneck `B`; feasibility of a candidate is
//! a tree knapsack — pick at most `m` disjoint subtrees, each of cost
//! `≤ B`, that off-load as much computation as possible; `B` is feasible
//! iff the host's leftover fits too. `O(n·m²·log Σw)` overall, verified
//! against brute force.

#![allow(clippy::needless_range_loop)] // index-based DP reads clearer here

use tgp_graph::{CutSet, EdgeId, NodeId, Tree, Weight};

use crate::coc::CocError;

/// The outcome of host-satellite partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSatelliteResult {
    /// Uplink edges: each cut edge sends one complete subtree to one
    /// satellite.
    pub cut: CutSet,
    /// Number of satellites used (`cut.len()`).
    pub satellites: usize,
    /// The minimized bottleneck: `max(host cost, satellite costs)`.
    pub bottleneck: Weight,
}

/// Per-node tree-knapsack state: `off[j]` = max weight off-loadable from
/// this node's subtree using `j` satellites, *without* cutting the node's
/// own uplink.
fn solve_feasible(tree: &Tree, root: NodeId, m: usize, bound: u64) -> Option<(u64, Vec<EdgeId>)> {
    let order = tree.post_order(root);
    let parent = tree.parents(root);
    let n = tree.len();
    // subtree_weight computed bottom-up.
    let mut subtree = vec![0u64; n];
    // off[v] = vector over 0..=m; choice[v][j] remembers, per child, how
    // many satellites it received and whether its uplink was cut.
    let mut off: Vec<Vec<u64>> = vec![Vec::new(); n];
    #[allow(clippy::type_complexity)]
    let mut choice: Vec<Vec<Vec<(usize, bool)>>> = vec![Vec::new(); n];
    for &v in &order {
        let vi = v.index();
        subtree[vi] = tree.node_weight(v).get();
        let children: Vec<NodeId> = tree
            .neighbors(v)
            .iter()
            .filter(|&&(u, _)| parent[vi].is_none_or(|(p, _)| u != p))
            .map(|&(u, _)| u)
            .collect();
        let mut acc = vec![0u64; m + 1];
        let mut acc_choice: Vec<Vec<(usize, bool)>> = vec![Vec::new(); m + 1];
        for &c in &children {
            let ci = c.index();
            subtree[vi] += subtree[ci];
            let uplink = tree
                .neighbors(v)
                .iter()
                .find(|&&(u, _)| u == c)
                .map(|&(_, e)| e)
                .expect("child is a neighbour");
            let cut_ok = subtree[ci] + tree.edge_weight(uplink).get() <= bound;
            // Max-plus knapsack merge of this child's options into acc.
            // Every slot 0..=m is reachable via (j = slot, jc = 0), so no
            // unset sentinel is needed: seed with the jc = 0 diagonal.
            let mut next: Vec<u64> = (0..=m).map(|slot| acc[slot] + off[ci][0]).collect();
            let mut next_choice: Vec<Vec<(usize, bool)>> = (0..=m)
                .map(|slot| {
                    let mut ch = acc_choice[slot].clone();
                    ch.push((0, false));
                    ch
                })
                .collect();
            for j in 0..=m {
                // Option A: recurse into child with jc satellites.
                for jc in 1..=m - j {
                    let gain = acc[j] + off[ci][jc];
                    let slot = j + jc;
                    if gain > next[slot] {
                        next[slot] = gain;
                        let mut ch = acc_choice[j].clone();
                        ch.push((jc, false));
                        next_choice[slot] = ch;
                    }
                }
                // Option B: cut the whole child subtree (1 satellite).
                if cut_ok && j < m {
                    let gain = acc[j] + subtree[ci];
                    let slot = j + 1;
                    if gain > next[slot] {
                        next[slot] = gain;
                        let mut ch = acc_choice[j].clone();
                        ch.push((0, true));
                        next_choice[slot] = ch;
                    }
                }
            }
            // Make the profile monotone: using fewer satellites is always
            // allowed.
            for slot in 1..=m {
                if next[slot] < next[slot - 1] {
                    next[slot] = next[slot - 1];
                    next_choice[slot] = next_choice[slot - 1].clone();
                }
            }
            acc = next;
            acc_choice = next_choice;
        }
        off[vi] = acc;
        choice[vi] = acc_choice;
    }
    let total = subtree[root.index()];
    let best_off = off[root.index()][m];
    if total - best_off > bound {
        return None;
    }
    // Reconstruct the cut: walk the choice tree.
    let mut cut = Vec::new();
    let mut stack = vec![(root, m)];
    while let Some((v, j)) = stack.pop() {
        let vi = v.index();
        let children: Vec<(NodeId, EdgeId)> = tree
            .neighbors(v)
            .iter()
            .filter(|&&(u, _)| parent[vi].is_none_or(|(p, _)| u != p))
            .copied()
            .collect();
        let decisions = &choice[vi][j];
        debug_assert_eq!(decisions.len(), children.len());
        for ((c, e), &(jc, cut_here)) in children.iter().zip(decisions) {
            if cut_here {
                cut.push(*e);
            } else if jc > 0 {
                stack.push((*c, jc));
            }
        }
    }
    Some((total - best_off, cut))
}

/// Minimizes the bottleneck of a host-satellite execution of `tree`
/// rooted at `root`, using at most `m` satellites.
///
/// # Errors
///
/// [`CocError::BadProcessorCount`] if `m` is zero or exceeds the number
/// of non-root nodes (a satellite needs at least one task).
///
/// # Panics
///
/// Panics if `root` is out of range for the tree.
///
/// # Examples
///
/// ```
/// use tgp_baselines::host_satellite::host_satellite_partition;
/// use tgp_graph::{NodeId, Tree, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Host root 0 with two heavy subtrees on cheap uplinks.
/// let t = Tree::from_raw(&[2, 10, 10], &[(0, 1, 1), (0, 2, 1)])?;
/// let r = host_satellite_partition(&t, NodeId::new(0), 2)?;
/// assert_eq!(r.satellites, 2);
/// assert_eq!(r.bottleneck, Weight::new(11)); // 10 + uplink 1
/// # Ok(())
/// # }
/// ```
pub fn host_satellite_partition(
    tree: &Tree,
    root: NodeId,
    m: usize,
) -> Result<HostSatelliteResult, CocError> {
    let n = tree.len();
    assert!(root.index() < n, "root {root} out of range");
    if m == 0 || m > n.saturating_sub(1).max(1) {
        return Err(CocError::BadProcessorCount { n, m });
    }
    // Binary search the bottleneck over [ceil(total/(m+1)), total].
    let total = tree.total_weight().get();
    let mut lo = 0u64;
    let mut hi = total;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if solve_feasible(tree, root, m, mid).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let (host_cost, cut_edges) =
        solve_feasible(tree, root, m, lo).expect("lo is feasible by construction");
    let cut = CutSet::new(cut_edges);
    let satellites = cut.len();
    // The bottleneck actually achieved (host or the worst satellite).
    let mut bottleneck = host_cost;
    let comps = tree.components(&cut).expect("cut edges are valid");
    for e in cut.iter() {
        let edge = tree.edge(e);
        // The satellite side is the component not containing the root.
        let side = if comps.component_of(edge.a) == comps.component_of(root) {
            edge.b
        } else {
            edge.a
        };
        let sat_cost = comps.weight(comps.component_of(side)).get() + edge.weight.get();
        bottleneck = bottleneck.max(sat_cost);
    }
    debug_assert!(bottleneck <= lo);
    Ok(HostSatelliteResult {
        cut,
        satellites,
        bottleneck: Weight::new(bottleneck),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute force over all subsets of edges, keeping only host-satellite
    /// shaped cuts (every non-root component adjacent to the host
    /// component via exactly its uplink).
    fn brute(tree: &Tree, root: NodeId, m: usize) -> u64 {
        let me = tree.edge_count();
        let mut best = u64::MAX;
        for mask in 0u32..(1 << me) {
            let cut: CutSet = (0..me)
                .filter(|&j| mask & (1 << j) != 0)
                .map(EdgeId::new)
                .collect();
            if cut.len() > m {
                continue;
            }
            let comps = tree.components(&cut).unwrap();
            let host = comps.component_of(root);
            // Validity: every cut edge must touch the host component
            // (satellites talk only to the host).
            let valid = cut.iter().all(|e| {
                let edge = tree.edge(e);
                comps.component_of(edge.a) == host || comps.component_of(edge.b) == host
            });
            if !valid {
                continue;
            }
            let mut b = comps.weight(host).get();
            for e in cut.iter() {
                let edge = tree.edge(e);
                let side = if comps.component_of(edge.a) == host {
                    edge.b
                } else {
                    edge.a
                };
                b = b.max(comps.weight(comps.component_of(side)).get() + edge.weight.get());
            }
            best = best.min(b);
        }
        best
    }

    #[test]
    fn single_node_tree_stays_on_host() {
        let t = Tree::from_raw(&[7], &[]).unwrap();
        let r = host_satellite_partition(&t, NodeId::new(0), 1).unwrap();
        assert_eq!(r.satellites, 0);
        assert_eq!(r.bottleneck, Weight::new(7));
    }

    #[test]
    fn offloads_heavy_subtrees() {
        let t = Tree::from_raw(&[2, 10, 10], &[(0, 1, 1), (0, 2, 1)]).unwrap();
        let r1 = host_satellite_partition(&t, NodeId::new(0), 1).unwrap();
        assert_eq!(r1.satellites, 1);
        assert_eq!(r1.bottleneck, Weight::new(12)); // host keeps 2 + 10
        let r2 = host_satellite_partition(&t, NodeId::new(0), 2).unwrap();
        assert_eq!(r2.bottleneck, Weight::new(11));
    }

    #[test]
    fn expensive_uplink_keeps_work_on_host() {
        // Off-loading through a weight-100 uplink is worse than keeping
        // everything local.
        let t = Tree::from_raw(&[5, 6], &[(0, 1, 100)]).unwrap();
        let r = host_satellite_partition(&t, NodeId::new(0), 1).unwrap();
        assert_eq!(r.satellites, 0);
        assert_eq!(r.bottleneck, Weight::new(11));
    }

    #[test]
    fn rejects_zero_satellites() {
        let t = Tree::from_raw(&[1, 1], &[(0, 1, 1)]).unwrap();
        assert!(host_satellite_partition(&t, NodeId::new(0), 0).is_err());
    }

    #[test]
    fn matches_brute_force() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use tgp_graph::generators::{random_tree, WeightDist};
        let mut rng = SmallRng::seed_from_u64(0x505);
        for round in 0..80 {
            let n: usize = rng.gen_range(1..10);
            let t = random_tree(
                n,
                WeightDist::Uniform { lo: 1, hi: 20 },
                WeightDist::Uniform { lo: 0, hi: 15 },
                &mut rng,
            );
            let m = rng.gen_range(1..=n.max(2) - 1).max(1);
            let root = NodeId::new(rng.gen_range(0..n));
            let r = host_satellite_partition(&t, root, m).unwrap();
            let expect = brute(&t, root, m);
            assert_eq!(r.bottleneck.get(), expect, "round={round} n={n} m={m}");
            assert!(r.satellites <= m);
        }
    }

    #[test]
    fn nested_offloading_is_found() {
        // A path 0-1-2-3 rooted at 0: with 2 satellites the best plan may
        // cut both (1,2) keeping {2,3} together... actually satellites
        // host full subtrees: cutting edge (1,2) sends subtree {2,3}.
        let t = Tree::from_raw(&[1, 1, 8, 8], &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let r = host_satellite_partition(&t, NodeId::new(0), 2).unwrap();
        let expect = brute(&t, NodeId::new(0), 2);
        assert_eq!(r.bottleneck.get(), expect);
    }
}
