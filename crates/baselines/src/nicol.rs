//! Nicol & O'Hallaron-style `O(n log n)` bandwidth minimization.
//!
//! Nicol & O'Hallaron (IEEE ToC 1991) solved the shared-memory bandwidth
//! minimization problem — the very problem the reproduced paper's TEMP_S
//! algorithm improves to `O(n + p log q)` — in `O(n log n)` time and
//! `O(n)` space. Their original pseudo-code is not in the reproduced text,
//! so this module implements the same DP recurrence with an ordered-map
//! sliding-window minimum, which matches their stated complexity exactly
//! and produces cuts of identical weight to `tgp_core::bandwidth` (cross
//! checked in the workspace integration tests).
//!
//! This is the head-to-head baseline for the paper's headline claim.

use std::collections::BTreeMap;

use tgp_graph::{CutSet, EdgeId, NodeId, PathGraph, Weight};

/// Errors for the baseline bandwidth solver (mirrors
/// `tgp_core::PartitionError` without depending on it, to keep the
/// baseline crate self-contained).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NicolError {
    /// A single vertex outweighs the load bound: no feasible cut.
    BoundTooSmall {
        /// The offending vertex.
        node: NodeId,
        /// Its weight.
        weight: Weight,
        /// The bound.
        bound: Weight,
    },
}

impl std::fmt::Display for NicolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NicolError::BoundTooSmall {
                node,
                weight,
                bound,
            } => write!(
                f,
                "load bound {bound} is smaller than the weight {weight} of node {node}"
            ),
        }
    }
}

impl std::error::Error for NicolError {}

/// An ordered multiset of `(cost, edge)` entries supporting O(log n)
/// insert/remove and O(log n) minimum — the window structure behind the
/// `O(n log n)` bound.
#[derive(Debug, Default)]
struct WindowMin {
    map: BTreeMap<(u64, usize), ()>,
}

impl WindowMin {
    fn insert(&mut self, cost: u64, edge: usize) {
        self.map.insert((cost, edge), ());
    }

    fn remove(&mut self, cost: u64, edge: usize) {
        self.map.remove(&(cost, edge));
    }

    fn min(&self) -> Option<(u64, usize)> {
        self.map.keys().next().copied()
    }
}

/// Minimum-weight cut keeping every segment within `bound`, via the
/// `O(n log n)` ordered-map DP (the Nicol & O'Hallaron baseline).
///
/// # Errors
///
/// [`NicolError::BoundTooSmall`] if a single vertex outweighs `bound`.
///
/// # Examples
///
/// ```
/// use tgp_baselines::nicol::nicol_bandwidth_cut;
/// use tgp_graph::{PathGraph, Weight};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = PathGraph::from_raw(&[4, 4, 4, 4], &[9, 1, 9])?;
/// let cut = nicol_bandwidth_cut(&p, Weight::new(8))?;
/// assert_eq!(p.cut_weight(&cut)?, Weight::new(1));
/// # Ok(())
/// # }
/// ```
pub fn nicol_bandwidth_cut(path: &PathGraph, bound: Weight) -> Result<CutSet, NicolError> {
    for (i, &w) in path.node_weights().iter().enumerate() {
        if w > bound {
            return Err(NicolError::BoundTooSmall {
                node: NodeId::new(i),
                weight: w,
                bound,
            });
        }
    }
    if path.total_weight() <= bound {
        return Ok(CutSet::empty());
    }
    const INF: u64 = u64::MAX;
    let n = path.len();
    let m = path.edge_count();
    let mut cost = vec![INF; m];
    let mut parent = vec![usize::MAX; m];
    let mut window = WindowMin::default();
    let mut lo = 0usize; // smallest predecessor index still in the window
    for j in 0..m {
        if j >= 1 && cost[j - 1] < INF {
            window.insert(cost[j - 1], j - 1);
        }
        while lo < j && path.span_weight(lo + 1, j) > bound {
            if cost[lo] < INF {
                window.remove(cost[lo], lo);
            }
            lo += 1;
        }
        let beta = path.edge_weight(EdgeId::new(j)).get();
        if path.span_weight(0, j) <= bound {
            cost[j] = beta;
            parent[j] = usize::MAX;
        }
        if let Some((c, i)) = window.min() {
            let candidate = c.saturating_add(beta);
            if candidate < cost[j] {
                cost[j] = candidate;
                parent[j] = i;
            }
        }
    }
    let mut best: Option<usize> = None;
    for j in (0..m).rev() {
        if path.span_weight(j + 1, n - 1) > bound {
            break;
        }
        if cost[j] < INF && best.is_none_or(|b| cost[j] < cost[b]) {
            best = Some(j);
        }
    }
    let mut j = best.expect("bound >= max vertex weight guarantees feasibility");
    let mut edges = Vec::new();
    loop {
        edges.push(EdgeId::new(j));
        if parent[j] == usize::MAX {
            break;
        }
        j = parent[j];
    }
    Ok(CutSet::new(edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cut_when_everything_fits() {
        let p = PathGraph::from_raw(&[1, 2, 3], &[10, 10]).unwrap();
        assert!(nicol_bandwidth_cut(&p, Weight::new(6)).unwrap().is_empty());
    }

    #[test]
    fn infeasible_bound_errors() {
        let p = PathGraph::from_raw(&[1, 9], &[1]).unwrap();
        let err = nicol_bandwidth_cut(&p, Weight::new(8)).unwrap_err();
        assert!(matches!(err, NicolError::BoundTooSmall { .. }));
        assert!(err.to_string().contains("v1"));
    }

    #[test]
    fn forced_single_cut() {
        let p = PathGraph::from_raw(&[4, 4, 4, 4], &[9, 1, 9]).unwrap();
        let cut = nicol_bandwidth_cut(&p, Weight::new(8)).unwrap();
        assert_eq!(cut.len(), 1);
        assert!(cut.contains(EdgeId::new(1)));
    }

    #[test]
    fn matches_brute_force() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..200 {
            let n = rng.gen_range(1..11);
            let nodes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..10)).collect();
            let edges: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(0..15)).collect();
            let p = PathGraph::from_raw(&nodes, &edges).unwrap();
            let max = nodes.iter().copied().max().unwrap();
            let k = rng.gen_range(max..=max + 15);
            let cut = nicol_bandwidth_cut(&p, Weight::new(k)).unwrap();
            assert!(p.is_feasible_cut(&cut, Weight::new(k)).unwrap());
            // Brute force.
            let m = p.edge_count();
            let mut best = u64::MAX;
            for mask in 0u32..(1 << m) {
                let c: CutSet = (0..m)
                    .filter(|&j| mask & (1 << j) != 0)
                    .map(EdgeId::new)
                    .collect();
                if p.is_feasible_cut(&c, Weight::new(k)).unwrap() {
                    best = best.min(p.cut_weight(&c).unwrap().get());
                }
            }
            assert_eq!(p.cut_weight(&cut).unwrap().get(), best);
        }
    }
}
