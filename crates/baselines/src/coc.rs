//! Chains-on-chains partitioning: shared problem definition.
//!
//! Bokhari (1988) and Hansen & Lih (1992) partition a chain of `n` modules
//! over `m` processors of a *linear array*, assigning a contiguous
//! non-empty block of modules to each processor. A processor's cost is its
//! computation load plus the communication over its (at most two) boundary
//! edges; the objective is to minimize the maximum processor cost (the
//! *bottleneck*).

use tgp_graph::{PathGraph, Weight};

/// Errors for chains-on-chains partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CocError {
    /// `m` must satisfy `1 ≤ m ≤ n` (each processor gets a non-empty
    /// block).
    BadProcessorCount {
        /// Number of modules.
        n: usize,
        /// Requested number of processors.
        m: usize,
    },
}

impl std::fmt::Display for CocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CocError::BadProcessorCount { n, m } => write!(
                f,
                "processor count {m} must be between 1 and the module count {n}"
            ),
        }
    }
}

impl std::error::Error for CocError {}

/// A partition of a chain into `m` contiguous non-empty blocks.
///
/// `boundaries[j]` is the index of the *first* module of block `j + 1`;
/// block 0 starts at module 0. Strictly increasing, length `m − 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainAssignment {
    boundaries: Vec<usize>,
}

impl ChainAssignment {
    /// Creates an assignment from block-start boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not strictly increasing or start at 0.
    pub fn new(boundaries: Vec<usize>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        assert!(
            boundaries.first().is_none_or(|&b| b > 0),
            "block 0 implicitly starts at module 0"
        );
        ChainAssignment { boundaries }
    }

    /// Number of processors (blocks).
    pub fn processors(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The inclusive module range `(start, end)` of block `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.processors()`.
    pub fn block(&self, j: usize, n: usize) -> (usize, usize) {
        let start = if j == 0 { 0 } else { self.boundaries[j - 1] };
        let end = if j == self.boundaries.len() {
            n - 1
        } else {
            self.boundaries[j] - 1
        };
        (start, end)
    }

    /// The block-start boundaries (module indices), strictly increasing.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Cost of block `j` on `path`: computation plus both boundary edges.
    pub fn block_cost(&self, path: &PathGraph, j: usize) -> Weight {
        let n = path.len();
        let (s, t) = self.block(j, n);
        let mut cost = path.span_weight(s, t);
        if s > 0 {
            cost += path.edge_weights()[s - 1];
        }
        if t < n - 1 {
            cost += path.edge_weights()[t];
        }
        cost
    }

    /// The bottleneck: the maximum block cost.
    pub fn bottleneck(&self, path: &PathGraph) -> Weight {
        (0..self.processors())
            .map(|j| self.block_cost(path, j))
            .max()
            .expect("at least one block")
    }
}

/// The cost a segment `[s, t]` incurs on its processor: computation plus
/// communication over the boundary edges that exist.
pub fn segment_cost(path: &PathGraph, s: usize, t: usize) -> Weight {
    let n = path.len();
    let mut cost = path.span_weight(s, t);
    if s > 0 {
        cost += path.edge_weights()[s - 1];
    }
    if t < n - 1 {
        cost += path.edge_weights()[t];
    }
    cost
}

/// Exhaustive optimal bottleneck over all `C(n-1, m-1)` assignments —
/// for tests only.
pub fn brute_force_bottleneck(path: &PathGraph, m: usize) -> Option<Weight> {
    let n = path.len();
    if m < 1 || m > n {
        return None;
    }
    fn rec(
        path: &PathGraph,
        boundaries: &mut Vec<usize>,
        next_start: usize,
        remaining: usize,
        best: &mut Option<Weight>,
    ) {
        let n = path.len();
        if remaining == 0 {
            let a = ChainAssignment::new(boundaries.clone());
            let b = a.bottleneck(path);
            if best.is_none() || b < best.unwrap() {
                *best = Some(b);
            }
            return;
        }
        for b in next_start..=(n - remaining) {
            boundaries.push(b);
            rec(path, boundaries, b + 1, remaining - 1, best);
            boundaries.pop();
        }
    }
    let mut best = None;
    rec(path, &mut Vec::new(), 1, m - 1, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> PathGraph {
        PathGraph::from_raw(&[2, 3, 5, 7, 11], &[10, 20, 30, 40]).unwrap()
    }

    #[test]
    fn single_block_assignment() {
        let a = ChainAssignment::new(vec![]);
        assert_eq!(a.processors(), 1);
        assert_eq!(a.block(0, 5), (0, 4));
        assert_eq!(a.bottleneck(&path()), Weight::new(28));
    }

    #[test]
    fn block_costs_include_boundary_edges() {
        let p = path();
        let a = ChainAssignment::new(vec![2, 4]);
        assert_eq!(a.processors(), 3);
        assert_eq!(a.block(0, 5), (0, 1));
        assert_eq!(a.block(1, 5), (2, 3));
        assert_eq!(a.block(2, 5), (4, 4));
        // Block 0: 2+3 plus right edge 20.
        assert_eq!(a.block_cost(&p, 0), Weight::new(25));
        // Block 1: 5+7 plus edges 20 and 40.
        assert_eq!(a.block_cost(&p, 1), Weight::new(72));
        // Block 2: 11 plus left edge 40.
        assert_eq!(a.block_cost(&p, 2), Weight::new(51));
        assert_eq!(a.bottleneck(&p), Weight::new(72));
    }

    #[test]
    fn segment_cost_matches_block_cost() {
        let p = path();
        let a = ChainAssignment::new(vec![2, 4]);
        for j in 0..3 {
            let (s, t) = a.block(j, 5);
            assert_eq!(segment_cost(&p, s, t), a.block_cost(&p, j));
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_boundaries_panic() {
        ChainAssignment::new(vec![3, 2]);
    }

    #[test]
    #[should_panic(expected = "implicitly starts")]
    fn zero_boundary_panics() {
        ChainAssignment::new(vec![0, 2]);
    }

    #[test]
    fn brute_force_handles_extremes() {
        let p = path();
        assert_eq!(brute_force_bottleneck(&p, 1), Some(Weight::new(28)));
        // m = n: every module alone; bottleneck = max(w_i + adjacent edges).
        let b = brute_force_bottleneck(&p, 5).unwrap();
        assert_eq!(b, Weight::new(77)); // module 3: 7 + 30 + 40
        assert_eq!(brute_force_bottleneck(&p, 6), None);
        assert_eq!(brute_force_bottleneck(&p, 0), None);
    }

    #[test]
    fn error_display() {
        let e = CocError::BadProcessorCount { n: 3, m: 9 };
        assert!(e.to_string().contains('9'));
    }
}
