//! Property-based tests on the prior-work baselines' structural
//! guarantees.

use proptest::prelude::*;

use tgp_baselines::block::block_partition;
use tgp_baselines::bokhari::bokhari_partition;
use tgp_baselines::hansen_lih::hansen_lih_partition;
use tgp_baselines::hetero::{hetero_partition, HeteroArray};
use tgp_baselines::host_satellite::host_satellite_partition;
use tgp_graph::{NodeId, PathGraph, Tree, TreeEdge, Weight};

fn arb_chain() -> impl Strategy<Value = PathGraph> {
    (1usize..25).prop_flat_map(|n| {
        (
            prop::collection::vec(1u64..30, n),
            prop::collection::vec(0u64..30, n - 1),
        )
            .prop_map(|(nodes, edges)| PathGraph::from_raw(&nodes, &edges).unwrap())
    })
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    (1usize..20).prop_flat_map(|n| {
        (
            prop::collection::vec(1u64..30, n),
            prop::collection::vec((0usize..usize::MAX, 0u64..30), n - 1),
        )
            .prop_map(|(nodes, raw)| {
                let edges: Vec<TreeEdge> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &(p, w))| {
                        TreeEdge::new(NodeId::new(p % (i + 1)), NodeId::new(i + 1), Weight::new(w))
                    })
                    .collect();
                Tree::from_edges(nodes.into_iter().map(Weight::new).collect(), edges).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Raising one processor's speed never worsens the heterogeneous
    /// bottleneck (same assignment stays available, possibly better ones
    /// appear).
    #[test]
    fn hetero_speed_is_monotone(
        chain in arb_chain(),
        speeds in prop::collection::vec(1u64..5, 1..6),
        which in 0usize..6,
        boost in 1u64..4,
    ) {
        let m = speeds.len().min(chain.len());
        let speeds = &speeds[..m];
        let base = hetero_partition(&chain, &HeteroArray::new(speeds.to_vec())).unwrap();
        let mut boosted = speeds.to_vec();
        let idx = which % m;
        boosted[idx] += boost;
        let better = hetero_partition(&chain, &HeteroArray::new(boosted)).unwrap();
        prop_assert!(better.bottleneck <= base.bottleneck);
    }

    /// More satellites never worsen the host-satellite bottleneck.
    #[test]
    fn host_satellite_is_monotone_in_m(tree in arb_tree(), root_seed in any::<usize>()) {
        let root = NodeId::new(root_seed % tree.len());
        let max_m = (tree.len() - 1).max(1);
        let mut prev: Option<Weight> = None;
        for m in 1..=max_m.min(5) {
            let r = host_satellite_partition(&tree, root, m).unwrap();
            prop_assert!(r.satellites <= m);
            if let Some(p) = prev {
                prop_assert!(r.bottleneck <= p, "m={m}");
            }
            prev = Some(r.bottleneck);
        }
    }

    /// The probe and the layered-graph DP always agree (exact optimum).
    #[test]
    fn probe_equals_dp(chain in arb_chain(), m_seed in 0usize..1000) {
        let m = 1 + m_seed % chain.len();
        let a = bokhari_partition(&chain, m).unwrap();
        let b = hansen_lih_partition(&chain, m).unwrap();
        prop_assert_eq!(a.bottleneck, b.bottleneck);
    }

    /// Block partitioning always yields min(blocks, n) segments of sizes
    /// differing by at most one.
    #[test]
    fn block_partition_shapes(chain in arb_chain(), blocks in 1usize..30) {
        let cut = block_partition(&chain, blocks);
        let segs = chain.segments(&cut).unwrap();
        prop_assert_eq!(segs.len(), blocks.min(chain.len()));
        let sizes: Vec<usize> = segs.iter().map(|s| s.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }
}
