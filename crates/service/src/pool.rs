//! A bounded MPMC queue feeding the worker pool.
//!
//! The acceptor pushes accepted connections with [`BoundedQueue::try_push`];
//! when the queue is full the push fails immediately and the acceptor
//! sheds load with a canned 503 instead of letting latency grow without
//! bound. Workers block in [`BoundedQueue::pop`] until work arrives or
//! the queue is closed for shutdown.
//!
//! Since batch fan-out, the queue carries [`Work`]: whole connections
//! from the acceptor *and* individual batch subtasks scattered by a
//! worker coordinating a `/v1/partition` batch (see
//! [`crate::api::BatchSubtask`] for why that can never deadlock).

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::api::BatchSubtask;
use tgp_net::{ConnId, LoopHandle};
use tgp_obs::TraceId;

/// One unit of work a pool worker can execute.
#[derive(Debug)]
pub enum Work {
    /// An accepted connection (threads mode): serve HTTP exchanges on it
    /// until it ends. The worker owns the socket for the connection's
    /// whole lifetime.
    Conn {
        /// The accepted socket.
        stream: TcpStream,
        /// When the acceptor pushed it, for the first request's
        /// queue-wait span.
        enqueued_at: Instant,
    },
    /// One complete framed request (epoll mode): parse, handle, and
    /// submit the response back through the event loop. The worker never
    /// touches a socket.
    Request {
        /// Which connection the request arrived on.
        conn: ConnId,
        /// The exact wire bytes of one request (head + body).
        bytes: Vec<u8>,
        /// Where to deliver the serialized response.
        reply: LoopHandle,
        /// Trace id minted when the request was framed.
        trace: TraceId,
        /// When the loop pushed the request onto the queue.
        enqueued_at: Instant,
        /// Absolute deadline parsed from the `x-deadline-ms` header at
        /// frame time. Workers drop still-queued requests whose
        /// deadline already passed without parsing them.
        deadline: Option<Instant>,
    },
    /// One chunk of a scattered partition batch.
    Batch(BatchSubtask),
}

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was at capacity; the item is handed back.
    Full(T),
    /// The queue was closed (server shutting down); the item is handed
    /// back.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity blocking queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; fails when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; returns `None` once the queue
    /// is closed *and* drained, which is each worker's exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked workers wake.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// The fixed capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-loop queues of a sharded server, behind one facade.
///
/// Each event loop of a [`tgp_net::LoopSet`] pushes its framed requests
/// onto its *own* [`BoundedQueue`], and its pinned worker slice pops
/// only from that queue — the request hot path never takes a queue lock
/// that another loop contends on. The cross-loop surface is limited to:
///
/// - **batch scatter** ([`QueueSet::try_push_rotating`]): a coordinator
///   spreads subtasks round-robin across all shards so a big batch uses
///   every core, not just its own loop's workers (a full shard is
///   skipped; if all are full the push fails and the coordinator runs
///   the chunk inline — same no-deadlock argument as before);
/// - **occupancy reads** ([`QueueSet::len`]/[`QueueSet::capacity`]):
///   admission control sheds on *total* occupancy, one lock per shard
///   per probe, off the per-request path of other loops.
#[derive(Debug)]
pub struct QueueSet<T = Work> {
    shards: Vec<Arc<BoundedQueue<T>>>,
    /// Round-robin cursor for batch scatter.
    rr: std::sync::atomic::AtomicUsize,
}

impl<T> QueueSet<T> {
    /// Wraps per-loop queues; `shards` must be non-empty.
    pub fn new(shards: Vec<Arc<BoundedQueue<T>>>) -> QueueSet<T> {
        assert!(!shards.is_empty(), "QueueSet needs at least one shard");
        QueueSet {
            shards,
            rr: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// A single-queue set (threads mode, or a 1-loop server).
    pub fn single(queue: Arc<BoundedQueue<T>>) -> QueueSet<T> {
        QueueSet::new(vec![queue])
    }

    /// Shard `i`'s queue (`None` beyond the shard count).
    pub fn shard(&self, i: usize) -> Option<&Arc<BoundedQueue<T>>> {
        self.shards.get(i)
    }

    /// Number of per-loop queues.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pushes onto the next shard in round-robin order, falling through
    /// full shards; fails only when *every* shard refuses. Used by
    /// batch scatter so subtasks spread across all loops' workers.
    pub fn try_push_rotating(&self, mut item: T) -> Result<(), PushError<T>> {
        let start = self.rr.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut last = None;
        for offset in 0..self.shards.len() {
            let shard = &self.shards[(start + offset) % self.shards.len()];
            match shard.try_push(item) {
                Ok(()) => return Ok(()),
                Err(PushError::Full(back)) => {
                    item = back;
                    last = Some(false);
                }
                Err(PushError::Closed(back)) => {
                    item = back;
                    last = Some(true);
                }
            }
        }
        Err(if last == Some(true) {
            PushError::Closed(item)
        } else {
            PushError::Full(item)
        })
    }

    /// Total queued items across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across every shard.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|q| q.capacity()).sum()
    }

    /// Closes every shard (shutdown).
    pub fn close(&self) {
        for shard in &self.shards {
            shard.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_set_rotates_and_falls_through_full_shards() {
        let shards = [
            Arc::new(BoundedQueue::new(1)),
            Arc::new(BoundedQueue::new(1)),
        ];
        let set = QueueSet::new(vec![Arc::clone(&shards[0]), Arc::clone(&shards[1])]);
        set.try_push_rotating(10).unwrap();
        set.try_push_rotating(20).unwrap();
        // Round-robin: one item per shard, not two on one.
        assert_eq!(shards[0].len(), 1);
        assert_eq!(shards[1].len(), 1);
        assert_eq!(set.len(), 2);
        assert_eq!(set.capacity(), 2);
        // Every shard full → the item comes back.
        match set.try_push_rotating(30) {
            Err(PushError::Full(30)) => {}
            other => panic!("expected Full(30), got {other:?}"),
        }
        // One shard drains → the rotating push lands there even if the
        // cursor points at the still-full one.
        assert!(shards[0].pop().is_some());
        set.try_push_rotating(40).unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn queue_set_close_closes_every_shard() {
        let set: QueueSet<u32> = QueueSet::new(vec![
            Arc::new(BoundedQueue::new(2)),
            Arc::new(BoundedQueue::new(2)),
        ]);
        set.close();
        match set.try_push_rotating(1) {
            Err(PushError::Closed(1)) => {}
            other => panic!("expected Closed(1), got {other:?}"),
        }
    }

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_wakes_poppers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(7)); // still drains
        assert_eq!(q.pop(), None); // then signals exit
        match q.try_push(8) {
            Err(PushError::Closed(8)) => {}
            other => panic!("expected Closed(8), got {other:?}"),
        }
    }

    #[test]
    fn blocked_worker_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(99).unwrap();
        assert_eq!(handle.join().unwrap(), Some(99));
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers() {
        let q = Arc::new(BoundedQueue::new(64));
        let mut producers = Vec::new();
        for t in 0..4 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                let mut pushed = 0u32;
                for i in 0..500u32 {
                    if q.try_push(t * 1000 + i).is_ok() {
                        pushed += 1;
                    }
                    std::thread::yield_now();
                }
                pushed
            }));
        }
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let pushed: u32 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        q.close();
        let got: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(pushed, got);
    }
}
