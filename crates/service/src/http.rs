//! A deliberately small HTTP/1.1 layer on top of `std::net`.
//!
//! Supports exactly what the partition service needs: request line +
//! headers + `Content-Length` bodies, keep-alive, and plain-text or JSON
//! responses. Transfer-encodings are rejected with 400 (only
//! `Content-Length` framing is understood); multipart, TLS and HTTP/2
//! are out of scope. Every parse failure maps to a structured status
//! code so malformed input can never panic a worker.

use std::io::{BufRead, Write};
use std::ops::Deref;
use std::path::PathBuf;

use tgp_store::SpillBuf;

/// Upper bound on the request line plus headers, in bytes. The epoll
/// framer in `tgp-net` enforces the same cap, so both `--io` modes
/// reject oversized heads identically.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;

/// A request body. Small bodies live on the heap; bodies whose declared
/// `Content-Length` crosses the server's spill threshold stream into an
/// unlinked [`SpillBuf`] file instead, so one huge upload cannot pin
/// gigabytes of worker heap. Either way it derefs to `&[u8]`, so
/// handlers never care where the bytes live.
pub enum Body {
    /// Heap-resident body (the common case).
    Ram(Vec<u8>),
    /// Body streamed into an unlinked disk mapping while being read.
    Spilled(SpillBuf),
}

impl Body {
    /// Whether the body lives in a spill file rather than on the heap.
    pub fn is_spilled(&self) -> bool {
        matches!(self, Body::Spilled(_))
    }
}

impl Deref for Body {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            Body::Ram(v) => v,
            Body::Spilled(b) => b.as_slice(),
        }
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Self {
        Body::Ram(v)
    }
}

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.is_spilled() { "Spilled" } else { "Ram" };
        write!(f, "Body::{kind}({} bytes)", self.len())
    }
}

/// Where (and past what size) request bodies spill to disk while being
/// read. `None` spill policy means every body is heap-resident.
#[derive(Debug, Clone)]
pub struct BodySpill {
    /// Bodies with `Content-Length >= threshold` stream into a spill
    /// buffer instead of the heap.
    pub threshold: usize,
    /// Directory for the (immediately unlinked) spill files.
    pub dir: PathBuf,
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query string not split off; the service has
    /// no query parameters).
    pub path: String,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Body,
    /// Whether the connection should stay open after this exchange.
    pub keep_alive: bool,
}

impl Request {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvError {
    /// Peer closed before sending a complete request — nothing to
    /// respond to.
    Disconnected,
    /// The per-request deadline elapsed before a complete request
    /// arrived. Closed like [`RecvError::Disconnected`], but counted
    /// separately (`tgp_timeout_closes_total{kind="read"}`).
    TimedOut,
    /// Request was syntactically invalid → respond 400.
    BadRequest(String),
    /// Declared body exceeds the service limit → respond 413.
    BodyTooLarge {
        /// The `Content-Length` the client declared.
        declared: usize,
        /// The server's body-size limit.
        limit: usize,
    },
}

/// Reads one request from any buffered source: a socket reader in
/// threads mode, or a `&[u8]` of framed bytes handed over by the epoll
/// loop — one parser, so both `--io` modes accept and reject
/// byte-identically.
///
/// `max_body` bounds the accepted `Content-Length`; larger declarations
/// are rejected *before* reading the body, so an oversized upload costs
/// the server only the header bytes.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, RecvError> {
    read_request_spilling(reader, max_body, None)
}

/// [`read_request`] with an optional body-spill policy: bodies whose
/// declared length is at or past `spill.threshold` are read in bounded
/// chunks straight into a [`SpillBuf`], never materializing the whole
/// payload on the heap. If the spill directory turns out to be
/// unwritable the read falls back to the heap rather than failing the
/// request.
pub fn read_request_spilling<R: BufRead>(
    reader: &mut R,
    max_body: usize,
    spill: Option<&BodySpill>,
) -> Result<Request, RecvError> {
    let mut head_bytes = 0usize;

    let request_line = read_line(reader, &mut head_bytes)?;
    if request_line.is_empty() {
        return Err(RecvError::Disconnected);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RecvError::BadRequest("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| RecvError::BadRequest("request line has no path".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RecvError::BadRequest("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let http10 = version == "HTTP/1.0";

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RecvError::BadRequest("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RecvError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => !http10,
    };

    // This layer only understands Content-Length framing. A request
    // bearing Transfer-Encoding (chunked or otherwise) must be rejected
    // outright: treating it as body-less would leave the chunked payload
    // in the buffer to be misread as the next pipelined request —
    // request smuggling behind any proxy.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(RecvError::BadRequest(
            "transfer-encoding is not supported; use content-length".into(),
        ));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| RecvError::BadRequest(format!("bad content-length {v:?}")))?,
    };
    if content_length > max_body {
        return Err(RecvError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }

    let body = read_body(reader, content_length, spill)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
        keep_alive,
    })
}

/// Bytes read per `read_exact` round while streaming a spilled body —
/// the heap high-water mark of a spilled read.
const BODY_CHUNK: usize = 64 * 1024;

/// Reads exactly `content_length` body bytes, spilling to disk when the
/// policy says so.
fn read_body<R: BufRead>(
    reader: &mut R,
    content_length: usize,
    spill: Option<&BodySpill>,
) -> Result<Body, RecvError> {
    if content_length == 0 {
        return Ok(Body::Ram(Vec::new()));
    }
    if let Some(policy) = spill {
        if content_length >= policy.threshold {
            return read_body_spilled(reader, content_length, policy);
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(recv_io_error)?;
    Ok(Body::Ram(body))
}

/// Streams a body into a [`SpillBuf`] in [`BODY_CHUNK`]-sized rounds.
/// A spill-storage failure (unwritable dir, disk full) degrades to a
/// heap read — worse for memory, but the request still succeeds.
fn read_body_spilled<R: BufRead>(
    reader: &mut R,
    content_length: usize,
    policy: &BodySpill,
) -> Result<Body, RecvError> {
    // Threshold 0: the very first chunk migrates to disk, so the heap
    // never holds more than one chunk of a spilled body.
    let mut buf = SpillBuf::new(0, &policy.dir);
    let mut chunk = vec![0u8; BODY_CHUNK.min(content_length)];
    let mut remaining = content_length;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        reader
            .read_exact(&mut chunk[..take])
            .map_err(recv_io_error)?;
        if buf.extend_from_slice(&chunk[..take]).is_err() {
            let mut body = Vec::with_capacity(content_length);
            body.extend_from_slice(buf.as_slice());
            body.extend_from_slice(&chunk[..take]);
            remaining -= take;
            let start = body.len();
            body.resize(start + remaining, 0);
            reader
                .read_exact(&mut body[start..])
                .map_err(recv_io_error)?;
            return Ok(Body::Ram(body));
        }
        remaining -= take;
    }
    Ok(Body::Spilled(buf))
}

/// Maps a transport error to the matching [`RecvError`]: deadline
/// expiries (surfaced as `WouldBlock`/`TimedOut` by socket timeouts and
/// the threads-mode deadline wrapper) are distinguished from plain
/// disconnects so they can be counted.
fn recv_io_error(e: std::io::Error) -> RecvError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RecvError::TimedOut,
        _ => RecvError::Disconnected,
    }
}

/// Reads one CRLF-terminated line, enforcing the head-size budget.
fn read_line<R: BufRead>(reader: &mut R, head_bytes: &mut usize) -> Result<String, RecvError> {
    let mut line = Vec::new();
    loop {
        let available = reader.fill_buf().map_err(recv_io_error)?;
        if available.is_empty() {
            if line.is_empty() {
                return Err(RecvError::Disconnected);
            }
            return Err(RecvError::BadRequest("truncated header line".into()));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(available.len());
        *head_bytes += take;
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(RecvError::BadRequest("request head too large".into()));
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| RecvError::BadRequest("non-UTF-8 header bytes".into()));
        }
    }
}

/// Reason phrases for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes a response onto any sink: the socket in threads mode, or
/// a `Vec<u8>` that the epoll loop later flushes with partial-write
/// resumption — one serializer, so responses are byte-identical across
/// `--io` modes.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(stream, status, content_type, &[], body, keep_alive)
}

/// [`write_response`] with extra response headers (name, value) — the
/// session endpoints use it for `x-tgp-solve`. Names and values are
/// caller-controlled constants, never client input.
pub fn write_response_with<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&'static str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// The 503 the acceptor writes when the worker queue is full. The body
/// is the same v2 envelope as every other error the service emits, with
/// `retry_after` mirrored in a `retry-after` header (seconds) so
/// well-behaved clients back off for roughly as long as the queue needs
/// to drain.
pub fn overloaded_response(retry_after_secs: u64) -> Vec<u8> {
    let body = crate::envelope::envelope_body(
        "overloaded",
        "server overloaded, retry shortly",
        Some(retry_after_secs),
        None,
        false,
    );
    format!(
        "HTTP/1.1 503 Service Unavailable\r\n\
         content-type: application/json\r\n\
         content-length: {}\r\n\
         retry-after: {}\r\n\
         connection: close\r\n\
         \r\n\
         {}",
        body.len(),
        retry_after_secs,
        body,
    )
    .into_bytes()
}

/// How long a shed client should wait before retrying: roughly one
/// "queue drain" at one request per worker per second — pessimistic for
/// cheap requests, but a 503 means the server is already behind.
/// Clamped to `[1, 30]` so the hint is always actionable.
pub fn retry_after_secs(queue_len: usize, workers: usize) -> u64 {
    (queue_len.div_ceil(workers.max(1)) as u64).clamp(1, 30)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_503_content_length_matches_body() {
        let bytes = overloaded_response(7);
        let text = std::str::from_utf8(&bytes).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(declared, body.len());
        assert!(head.contains("retry-after: 7"));
        assert_eq!(
            body,
            "{\"code\":\"overloaded\",\"message\":\"server overloaded, retry shortly\",\
             \"retry_after\":7}\n"
        );
        assert_eq!(
            crate::envelope::parse_envelope(body.as_bytes()).unwrap(),
            "overloaded"
        );
    }

    #[test]
    fn retry_after_scales_with_queue_depth_within_bounds() {
        assert_eq!(retry_after_secs(0, 4), 1, "never advertise zero");
        assert_eq!(retry_after_secs(4, 4), 1);
        assert_eq!(retry_after_secs(9, 4), 3);
        assert_eq!(retry_after_secs(1_000_000, 4), 30, "capped");
        assert_eq!(retry_after_secs(5, 0), 5, "zero workers must not panic");
    }

    #[test]
    fn reasons_cover_service_statuses() {
        for s in [200, 400, 404, 405, 409, 413, 422, 500, 503, 504] {
            assert_ne!(reason(s), "Unknown");
        }
    }

    fn framed_post(body: &[u8]) -> Vec<u8> {
        let mut wire = format!(
            "POST /v1/partition HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(body);
        wire
    }

    #[test]
    fn large_body_spills_and_round_trips_byte_identically() {
        // 3 chunks + a ragged tail, so the chunked loop exercises both
        // full and partial rounds.
        let payload: Vec<u8> = (0..BODY_CHUNK * 3 + 17).map(|i| (i % 251) as u8).collect();
        let wire = framed_post(&payload);
        let spill = BodySpill {
            threshold: 1024,
            dir: std::env::temp_dir(),
        };
        let req = read_request_spilling(&mut wire.as_slice(), usize::MAX, Some(&spill)).unwrap();
        assert!(req.body.is_spilled(), "{:?}", req.body);
        assert_eq!(&req.body[..], &payload[..]);
    }

    #[test]
    fn small_body_stays_on_the_heap() {
        let wire = framed_post(b"{\"small\":true}");
        let spill = BodySpill {
            threshold: 1024,
            dir: std::env::temp_dir(),
        };
        let req = read_request_spilling(&mut wire.as_slice(), usize::MAX, Some(&spill)).unwrap();
        assert!(!req.body.is_spilled());
        assert_eq!(&req.body[..], b"{\"small\":true}");
    }

    #[test]
    fn unwritable_spill_dir_falls_back_to_heap() {
        let payload: Vec<u8> = (0..BODY_CHUNK + 5).map(|i| (i % 13) as u8).collect();
        let wire = framed_post(&payload);
        let spill = BodySpill {
            threshold: 1,
            dir: std::path::PathBuf::from("/definitely/not/a/real/dir"),
        };
        let req = read_request_spilling(&mut wire.as_slice(), usize::MAX, Some(&spill)).unwrap();
        assert!(!req.body.is_spilled(), "must degrade to RAM, not fail");
        assert_eq!(&req.body[..], &payload[..]);
    }

    #[test]
    fn spilled_body_still_enforces_max_body_before_reading() {
        let payload = vec![7u8; 4096];
        let wire = framed_post(&payload);
        let spill = BodySpill {
            threshold: 1,
            dir: std::env::temp_dir(),
        };
        let err = read_request_spilling(&mut wire.as_slice(), 100, Some(&spill)).unwrap_err();
        assert_eq!(
            err,
            RecvError::BodyTooLarge {
                declared: 4096,
                limit: 100
            }
        );
    }

    #[test]
    fn extra_headers_land_between_standard_head_and_body() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            200,
            "application/json",
            &[("x-tgp-solve", "warm".to_string())],
            b"{}\n",
            true,
        )
        .unwrap();
        let text = std::str::from_utf8(&out).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("x-tgp-solve: warm"), "{head}");
        assert_eq!(body, "{}\n");
    }
}
