//! Lock-free service metrics with Prometheus text rendering.
//!
//! Everything is `AtomicU64`, so the hot path (every request) costs a
//! handful of relaxed increments; rendering `/metrics` is the only place
//! the values are read coherently enough for scraping (Prometheus
//! tolerates the slight skew between counters read at different
//! instants).
//!
//! Latency accounting uses the log-linear [`tgp_obs::Histogram`]
//! (bounded memory, lock-free recording, exact nanosecond sums): one
//! per request, one per objective, one per pipeline [`Stage`]. The
//! exposition renders each at the fixed [`LATENCY_BUCKETS_US`] bounds
//! via [`Histogram::cumulative_le`], so scrapes keep the same
//! `le=` label values they always had while quantile math happens at
//! full log-linear resolution internally. Samples are bucketed at
//! 12.5% resolution, so a sample just above a fixed bound can land in
//! a log-linear bucket whose upper edge is below it (e.g. 100 µs
//! exactly counts toward `le="0.0001"` only if its 12.5%-wide bucket
//! ends at or under 100 µs); `_sum`/`_count` stay exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tgp_net::{NetCounters, TimeoutKind};
use tgp_obs::{Histogram, Stage};
use tgp_solvers::Registry;

/// Upper bounds (in microseconds) of the rendered latency histogram
/// buckets; the final `+Inf` bucket is implicit.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000, 1_000_000,
];

/// The endpoints tracked individually; everything else lands in `other`.
const ENDPOINTS: [&str; 7] = [
    "partition",
    "simulate",
    "graphs",
    "healthz",
    "metrics",
    "debug",
    "other",
];

/// The status classes tracked per endpoint. Unknown statuses fold into
/// the last entry, so 500 must stay last.
const STATUSES: [u16; 10] = [200, 400, 404, 405, 409, 413, 422, 503, 504, 500];

/// Label values of the `tgp_deadline_drops_total{where=...}` family:
/// where in the pipeline a request (or batch item) was dropped because
/// its deadline expired or its remaining time was shed.
pub const DEADLINE_DROP_SITES: [&str; 5] = ["admission", "queue", "parse", "solve", "batch"];

/// Label values of the `tgp_store_backing{kind=...}` family: which
/// `tgp-store` memory backing a flat-ingested graph landed on.
pub const STORE_BACKINGS: [&str; 2] = ["ram", "disk"];

/// Per-objective counters, indexed by the solver's registry index so the
/// hot path never touches the objective name.
#[derive(Debug, Default)]
struct ObjectiveStats {
    /// Requests dispatched to this objective (successes and failures).
    requests: AtomicU64,
    /// Requests that ended in an error after the objective was resolved
    /// (parse rejections, infeasible instances, cost-cap refusals).
    errors: AtomicU64,
    /// Handling-latency histogram (nanosecond samples).
    latency: Histogram,
}

/// Central metrics registry shared by acceptor, workers and scrapers.
#[derive(Debug)]
pub struct Metrics {
    /// `requests[endpoint][status]` counts completed exchanges.
    requests: [[AtomicU64; STATUSES.len()]; ENDPOINTS.len()],
    /// Per-objective traffic, parallel to `objective_names`.
    objectives: Vec<ObjectiveStats>,
    /// Solver names in registry order — the label values for
    /// `tgp_objective_*` series.
    objective_names: &'static [&'static str],
    /// 503s written by the acceptor when the queue was full.
    rejected_overload: AtomicU64,
    /// Batch envelopes served by `/v1/partition`.
    batch_requests: AtomicU64,
    /// Batch items executed by pool workers via scatter/gather.
    batch_subtasks_pool: AtomicU64,
    /// Batch items executed inline by the coordinating worker (pool
    /// saturated, stolen back, or the batch was too small to scatter).
    batch_subtasks_inline: AtomicU64,
    /// Request handling latency (nanosecond samples).
    latency: Histogram,
    /// Per-pipeline-stage latency, indexed by [`Stage::index`].
    stages: [Histogram; Stage::ALL.len()],
    /// Result-cache traffic.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Connections currently waiting in the bounded queue.
    queue_depth: AtomicU64,
    /// Worker threads currently handling a connection.
    busy_workers: AtomicU64,
    /// Requests shed by the cost-based admission guard (503 with code
    /// `shed_expensive`).
    shed_by_cost: AtomicU64,
    /// Deadline-driven drops, indexed like [`DEADLINE_DROP_SITES`].
    deadline_drops: [AtomicU64; DEADLINE_DROP_SITES.len()],
    /// Heap bytes currently pinned by flat graph arrays (gauge;
    /// disk-backed graphs pin none — their pages live in the page
    /// cache).
    graph_resident_bytes: AtomicU64,
    /// Graphs ingested into disk-backed arrays because their body
    /// crossed the `--graph-spill-bytes` threshold.
    graph_spilled: AtomicU64,
    /// Flat-ingested graphs by backing, indexed like [`STORE_BACKINGS`].
    store_backing: [AtomicU64; STORE_BACKINGS.len()],
    /// Connection-layer counters, one set per event loop (threads mode
    /// and single-loop epoll have exactly one). `/metrics` renders the
    /// *sum* for the unlabeled totals — summing at render time means a
    /// loop that is torn down (its gauge already decremented by its own
    /// force-close path) can never double-count — plus per-loop
    /// `loop="i"` series when more than one loop runs.
    nets: Vec<Arc<NetCounters>>,
}

impl Default for Metrics {
    fn default() -> Self {
        let objective_names = Registry::shared().names();
        Metrics {
            requests: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            objectives: objective_names
                .iter()
                .map(|_| ObjectiveStats::default())
                .collect(),
            objective_names,
            rejected_overload: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            batch_subtasks_pool: AtomicU64::new(0),
            batch_subtasks_inline: AtomicU64::new(0),
            latency: Histogram::new(),
            stages: std::array::from_fn(|_| Histogram::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            busy_workers: AtomicU64::new(0),
            shed_by_cost: AtomicU64::new(0),
            deadline_drops: std::array::from_fn(|_| AtomicU64::new(0)),
            graph_resident_bytes: AtomicU64::new(0),
            graph_spilled: AtomicU64::new(0),
            store_backing: std::array::from_fn(|_| AtomicU64::new(0)),
            nets: vec![Arc::new(NetCounters::default())],
        }
    }
}

fn endpoint_index(endpoint: &str) -> usize {
    ENDPOINTS
        .iter()
        .position(|e| *e == endpoint)
        .unwrap_or(ENDPOINTS.len() - 1)
}

fn status_index(status: u16) -> usize {
    STATUSES
        .iter()
        .position(|s| *s == status)
        .unwrap_or(STATUSES.len() - 1)
}

/// Saturating gauge adjustment: a decrement can never wrap below zero,
/// so a scrape during an increment/decrement race reads 0 rather than
/// `u64::MAX`.
fn adjust_gauge(gauge: &AtomicU64, delta: i64) {
    if delta >= 0 {
        gauge.fetch_add(delta as u64, Ordering::Relaxed);
    } else {
        let d = delta.unsigned_abs();
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(d))
        });
    }
}

/// Renders one histogram as cumulative `_bucket`/`_sum`/`_count`
/// series at the fixed [`LATENCY_BUCKETS_US`] bounds. `labels` is
/// either empty or `name="value",` pairs with a trailing comma, so the
/// `le` label composes behind it.
fn render_histogram(out: &mut String, name: &str, labels: &str, hist: &Histogram) {
    for bound_us in LATENCY_BUCKETS_US {
        out.push_str(&format!(
            "{name}_bucket{{{labels}le=\"{}\"}} {}\n",
            bound_us as f64 / 1e6,
            hist.cumulative_le(bound_us * 1_000)
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels}le=\"+Inf\"}} {}\n",
        hist.count()
    ));
    let plain = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", labels.trim_end_matches(','))
    };
    out.push_str(&format!("{name}_sum{plain} {}\n", hist.sum() as f64 / 1e9));
    out.push_str(&format!("{name}_count{plain} {}\n", hist.count()));
}

impl Metrics {
    /// Records one completed request.
    pub fn record_request(&self, endpoint: &str, status: u16, latency: Duration) {
        self.requests[endpoint_index(endpoint)][status_index(status)]
            .fetch_add(1, Ordering::Relaxed);
        self.latency.record_duration(latency);
    }

    /// Records the duration of one pipeline stage of one request.
    pub fn record_stage(&self, stage: Stage, latency: Duration) {
        self.stages[stage.index()].record_duration(latency);
    }

    /// Records one partition request against the objective at the given
    /// registry index ([`tgp_solvers::Registry::get`] returns it next to
    /// the solver). Out-of-range indexes are ignored rather than panic:
    /// metrics must never take a worker down.
    pub fn record_objective(&self, index: usize, ok: bool, latency: Duration) {
        let Some(stats) = self.objectives.get(index) else {
            return;
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        stats.latency.record_duration(latency);
    }

    /// Records a connection refused with the canned 503.
    pub fn record_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batch envelope served by `/v1/partition`.
    pub fn record_batch(&self) {
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batch item, labelled by where it ran: `pool` when a
    /// fanned-out worker executed it, `inline` when the coordinating
    /// worker ran it itself.
    pub fn record_batch_subtask(&self, pool: bool) {
        if pool {
            self.batch_subtasks_pool.fetch_add(1, Ordering::Relaxed);
        } else {
            self.batch_subtasks_inline.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a cache lookup outcome.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adjusts the queued-connection gauge.
    pub fn queue_changed(&self, delta: i64) {
        adjust_gauge(&self.queue_depth, delta);
    }

    /// Adjusts the busy-worker gauge.
    pub fn workers_changed(&self, delta: i64) {
        adjust_gauge(&self.busy_workers, delta);
    }

    /// Records one request shed by the cost-based admission guard.
    pub fn record_shed_by_cost(&self) {
        self.shed_by_cost.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one deadline-driven drop at the named pipeline site
    /// (one of [`DEADLINE_DROP_SITES`]; unknown names are ignored).
    pub fn record_deadline_drop(&self, site: &str) {
        if let Some(i) = DEADLINE_DROP_SITES.iter().position(|s| *s == site) {
            self.deadline_drops[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total deadline-driven drops across every site.
    pub fn deadline_drops(&self) -> u64 {
        self.deadline_drops
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Adjusts the resident-flat-graph-bytes gauge: `+bytes` when a
    /// flat graph is built, `-bytes` when it is dropped.
    pub fn graph_resident_changed(&self, delta: i64) {
        adjust_gauge(&self.graph_resident_bytes, delta);
    }

    /// Records one graph ingested onto the named backing (`ram` or
    /// `disk`; unknown names are ignored). Disk ingests also advance
    /// the spill counter.
    pub fn record_store_backing(&self, kind: &str) {
        if let Some(i) = STORE_BACKINGS.iter().position(|k| *k == kind) {
            self.store_backing[i].fetch_add(1, Ordering::Relaxed);
        }
        if kind == "disk" {
            self.graph_spilled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total graphs spilled to disk so far (used by tests).
    pub fn graphs_spilled(&self) -> u64 {
        self.graph_spilled.load(Ordering::Relaxed)
    }

    /// The connection-layer counters of loop 0. The transport
    /// increments them (the epoll loop for open connections,
    /// backpressure, timeouts and wakeups; the threads-mode servers for
    /// open connections and timeouts) and `/metrics` renders them.
    /// Multi-loop servers address their other loops via
    /// [`Metrics::net_for`].
    pub fn net(&self) -> &Arc<NetCounters> {
        &self.nets[0]
    }

    /// The connection-layer counters of event loop `i` (`None` beyond
    /// the configured loop count).
    pub fn net_for(&self, i: usize) -> Option<&Arc<NetCounters>> {
        self.nets.get(i)
    }

    /// Grows the per-loop counter list to `loops` entries. Called once
    /// at server wiring time, before the metrics are shared; existing
    /// entries (and anything recorded on them) are kept.
    pub fn set_net_loops(&mut self, loops: usize) {
        while self.nets.len() < loops.max(1) {
            self.nets.push(Arc::new(NetCounters::default()));
        }
    }

    /// How many event loops the connection-layer series cover.
    pub fn net_loops(&self) -> usize {
        self.nets.len()
    }

    /// Sums one counter across every loop's [`NetCounters`].
    fn net_sum(&self, field: impl Fn(&NetCounters) -> &AtomicU64) -> u64 {
        self.nets
            .iter()
            .map(|net| field(net).load(Ordering::Relaxed))
            .sum()
    }

    /// Total cache hits so far (used by tests asserting hit behaviour).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str(
            "# HELP tgp_requests_total Completed HTTP exchanges by endpoint and status.\n",
        );
        out.push_str("# TYPE tgp_requests_total counter\n");
        for (ei, endpoint) in ENDPOINTS.iter().enumerate() {
            for (si, status) in STATUSES.iter().enumerate() {
                let n = self.requests[ei][si].load(Ordering::Relaxed);
                if n > 0 {
                    out.push_str(&format!(
                        "tgp_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {n}\n"
                    ));
                }
            }
        }

        out.push_str(
            "# HELP tgp_objective_requests_total Partition requests by objective (all outcomes).\n",
        );
        out.push_str("# TYPE tgp_objective_requests_total counter\n");
        out.push_str("# HELP tgp_objective_errors_total Partition requests by objective that ended in an error.\n");
        out.push_str("# TYPE tgp_objective_errors_total counter\n");
        out.push_str(
            "# HELP tgp_objective_latency_seconds Partition handling latency by objective.\n",
        );
        out.push_str("# TYPE tgp_objective_latency_seconds histogram\n");
        for (name, stats) in self.objective_names.iter().zip(&self.objectives) {
            let requests = stats.requests.load(Ordering::Relaxed);
            if requests == 0 {
                continue; // keep the exposition small until an objective sees traffic
            }
            let errors = stats.errors.load(Ordering::Relaxed);
            out.push_str(&format!(
                "tgp_objective_requests_total{{objective=\"{name}\"}} {requests}\n"
            ));
            out.push_str(&format!(
                "tgp_objective_errors_total{{objective=\"{name}\"}} {errors}\n"
            ));
            render_histogram(
                &mut out,
                "tgp_objective_latency_seconds",
                &format!("objective=\"{name}\","),
                &stats.latency,
            );
        }

        out.push_str("# HELP tgp_rejected_overload_total Connections refused with 503 because the queue was full.\n");
        out.push_str("# TYPE tgp_rejected_overload_total counter\n");
        out.push_str(&format!(
            "tgp_rejected_overload_total {}\n",
            self.rejected_overload.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP tgp_batch_requests_total Batch envelopes served by /v1/partition.\n");
        out.push_str("# TYPE tgp_batch_requests_total counter\n");
        out.push_str(&format!(
            "tgp_batch_requests_total {}\n",
            self.batch_requests.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP tgp_batch_subtasks_total Batch items by execution path.\n");
        out.push_str("# TYPE tgp_batch_subtasks_total counter\n");
        out.push_str(&format!(
            "tgp_batch_subtasks_total{{path=\"pool\"}} {}\n",
            self.batch_subtasks_pool.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "tgp_batch_subtasks_total{{path=\"inline\"}} {}\n",
            self.batch_subtasks_inline.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP tgp_request_latency_seconds Request handling latency.\n");
        out.push_str("# TYPE tgp_request_latency_seconds histogram\n");
        render_histogram(&mut out, "tgp_request_latency_seconds", "", &self.latency);

        out.push_str(
            "# HELP tgp_stage_latency_seconds Per-request pipeline stage latency (queue wait, parse, cache lookup, solve, serialize, socket write).\n",
        );
        out.push_str("# TYPE tgp_stage_latency_seconds histogram\n");
        for stage in Stage::ALL {
            render_histogram(
                &mut out,
                "tgp_stage_latency_seconds",
                &format!("stage=\"{}\",", stage.as_str()),
                &self.stages[stage.index()],
            );
        }

        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        out.push_str("# HELP tgp_cache_hits_total Result-cache hits.\n");
        out.push_str("# TYPE tgp_cache_hits_total counter\n");
        out.push_str(&format!("tgp_cache_hits_total {hits}\n"));
        out.push_str("# HELP tgp_cache_misses_total Result-cache misses.\n");
        out.push_str("# TYPE tgp_cache_misses_total counter\n");
        out.push_str(&format!("tgp_cache_misses_total {misses}\n"));
        out.push_str("# HELP tgp_cache_hit_ratio Hits over lookups since start.\n");
        out.push_str("# TYPE tgp_cache_hit_ratio gauge\n");
        let ratio = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        out.push_str(&format!("tgp_cache_hit_ratio {ratio}\n"));

        out.push_str("# HELP tgp_queue_depth Connections waiting for a worker.\n");
        out.push_str("# TYPE tgp_queue_depth gauge\n");
        out.push_str(&format!(
            "tgp_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP tgp_busy_workers Workers currently serving a connection.\n");
        out.push_str("# TYPE tgp_busy_workers gauge\n");
        out.push_str(&format!(
            "tgp_busy_workers {}\n",
            self.busy_workers.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP tgp_shed_by_cost_total Requests shed by the cost-based admission guard.\n",
        );
        out.push_str("# TYPE tgp_shed_by_cost_total counter\n");
        out.push_str(&format!(
            "tgp_shed_by_cost_total {}\n",
            self.shed_by_cost.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP tgp_deadline_drops_total Work dropped because its deadline expired, by pipeline site.\n",
        );
        out.push_str("# TYPE tgp_deadline_drops_total counter\n");
        for (i, site) in DEADLINE_DROP_SITES.iter().enumerate() {
            out.push_str(&format!(
                "tgp_deadline_drops_total{{where=\"{}\"}} {}\n",
                site,
                self.deadline_drops[i].load(Ordering::Relaxed)
            ));
        }

        out.push_str(
            "# HELP tgp_graph_resident_bytes Heap bytes pinned by resident flat graph arrays (disk-backed graphs pin none).\n",
        );
        out.push_str("# TYPE tgp_graph_resident_bytes gauge\n");
        out.push_str(&format!(
            "tgp_graph_resident_bytes {}\n",
            self.graph_resident_bytes.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP tgp_graph_spilled_total Graphs ingested into disk-backed (mmap) arrays because they crossed the spill threshold.\n",
        );
        out.push_str("# TYPE tgp_graph_spilled_total counter\n");
        out.push_str(&format!(
            "tgp_graph_spilled_total {}\n",
            self.graph_spilled.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP tgp_store_backing Flat-ingested graphs by memory backing.\n");
        out.push_str("# TYPE tgp_store_backing counter\n");
        for (i, kind) in STORE_BACKINGS.iter().enumerate() {
            out.push_str(&format!(
                "tgp_store_backing{{kind=\"{}\"}} {}\n",
                kind,
                self.store_backing[i].load(Ordering::Relaxed)
            ));
        }

        // Connection-level series: the unlabeled line is always the sum
        // over loops (so totals survive loop teardown without
        // double-counting — each loop only ever touches its own
        // counters), and a multi-loop server additionally renders one
        // `loop="i"`-labeled line per loop.
        let multi = self.nets.len() > 1;
        let net_family = |out: &mut String,
                          name: &str,
                          help: &str,
                          kind: &str,
                          field: &dyn Fn(&NetCounters) -> &AtomicU64| {
            out.push_str(&format!("# HELP {name} {help}\n"));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            out.push_str(&format!("{name} {}\n", self.net_sum(field)));
            if multi {
                for (i, net) in self.nets.iter().enumerate() {
                    out.push_str(&format!(
                        "{name}{{loop=\"{i}\"}} {}\n",
                        field(net).load(Ordering::Relaxed)
                    ));
                }
            }
        };
        net_family(
            &mut out,
            "tgp_open_connections",
            "Currently open client connections.",
            "gauge",
            &|net| &net.open_connections,
        );
        net_family(
            &mut out,
            "tgp_accepted_connections_total",
            "Connections accepted since start.",
            "counter",
            &|net| &net.accepted_total,
        );
        net_family(
            &mut out,
            "tgp_accept_backpressure_total",
            "Times accepting paused because the connection cap was reached.",
            "counter",
            &|net| &net.accept_backpressure,
        );
        out.push_str("# HELP tgp_timeout_closes_total Connections closed by a timeout, by kind.\n");
        out.push_str("# TYPE tgp_timeout_closes_total counter\n");
        for kind in [TimeoutKind::Read, TimeoutKind::Write, TimeoutKind::Idle] {
            out.push_str(&format!(
                "tgp_timeout_closes_total{{kind=\"{}\"}} {}\n",
                kind.as_str(),
                self.net_sum(|net| net.timeout_closes(kind))
            ));
        }
        net_family(
            &mut out,
            "tgp_readiness_wakeups_total",
            "epoll_wait returns that delivered events.",
            "counter",
            &|net| &net.readiness_wakeups,
        );

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_render() {
        let m = Metrics::default();
        m.record_request("partition", 200, Duration::from_micros(300));
        m.record_request("partition", 200, Duration::from_micros(40));
        m.record_request("simulate", 422, Duration::from_millis(2));
        m.record_overload();
        m.record_cache(true);
        m.record_cache(false);
        m.queue_changed(3);
        m.queue_changed(-1);
        m.record_batch();
        m.record_batch_subtask(true);
        m.record_batch_subtask(true);
        m.record_batch_subtask(false);
        let text = m.render();
        assert!(text.contains("tgp_requests_total{endpoint=\"partition\",status=\"200\"} 2"));
        assert!(text.contains("tgp_batch_requests_total 1"));
        assert!(text.contains("tgp_batch_subtasks_total{path=\"pool\"} 2"));
        assert!(text.contains("tgp_batch_subtasks_total{path=\"inline\"} 1"));
        assert!(text.contains("tgp_requests_total{endpoint=\"simulate\",status=\"422\"} 1"));
        assert!(text.contains("tgp_rejected_overload_total 1"));
        assert!(text.contains("tgp_cache_hits_total 1"));
        assert!(text.contains("tgp_cache_misses_total 1"));
        assert!(text.contains("tgp_cache_hit_ratio 0.5"));
        assert!(text.contains("tgp_queue_depth 2"));
        assert!(text.contains("tgp_request_latency_seconds_count 3"));
    }

    #[test]
    fn objective_series_appear_only_with_traffic() {
        let m = Metrics::default();
        let (bandwidth, _) = Registry::shared().get("bandwidth").unwrap();
        let quiet = m.render();
        assert!(!quiet.contains("tgp_objective_requests_total{"));

        m.record_objective(bandwidth, true, Duration::from_micros(500));
        m.record_objective(bandwidth, false, Duration::from_micros(100));
        m.record_objective(usize::MAX, true, Duration::ZERO); // ignored, not a panic
        let text = m.render();
        assert!(text.contains("tgp_objective_requests_total{objective=\"bandwidth\"} 2"));
        assert!(text.contains("tgp_objective_errors_total{objective=\"bandwidth\"} 1"));
        assert!(text.contains("tgp_objective_latency_seconds_sum{objective=\"bandwidth\"} 0.0006"));
        assert!(text.contains("tgp_objective_latency_seconds_count{objective=\"bandwidth\"} 2"));
        // No traffic on the other objectives → no series for them.
        assert!(!text.contains("objective=\"procmin\""));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::default();
        m.record_request("healthz", 200, Duration::from_micros(50));
        m.record_request("healthz", 200, Duration::from_micros(200));
        m.record_request("healthz", 200, Duration::from_secs(10)); // +Inf
        let text = m.render();
        assert!(text.contains("tgp_request_latency_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("tgp_request_latency_seconds_bucket{le=\"0.00025\"} 2"));
        assert!(text.contains("tgp_request_latency_seconds_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn stage_histograms_render_for_all_stages() {
        let m = Metrics::default();
        m.record_stage(Stage::Solve, Duration::from_micros(80));
        m.record_stage(Stage::Solve, Duration::from_micros(400));
        m.record_stage(Stage::Write, Duration::from_micros(30));
        let text = m.render();
        // Recorded stages carry their samples in cumulative buckets...
        assert!(
            text.contains("tgp_stage_latency_seconds_bucket{stage=\"solve\",le=\"0.0001\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("tgp_stage_latency_seconds_bucket{stage=\"solve\",le=\"0.0005\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("tgp_stage_latency_seconds_count{stage=\"solve\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("tgp_stage_latency_seconds_count{stage=\"write\"} 1"),
            "{text}"
        );
        // ...and every stage renders unconditionally, so dashboards can
        // rely on the full label set from the first scrape.
        for stage in Stage::ALL {
            assert!(
                text.contains(&format!(
                    "tgp_stage_latency_seconds_count{{stage=\"{}\"}}",
                    stage.as_str()
                )),
                "{stage:?} series missing"
            );
        }
    }

    #[test]
    fn net_and_shed_series_render() {
        let m = Metrics::default();
        m.record_shed_by_cost();
        m.net().open_connections.fetch_add(3, Ordering::Relaxed);
        m.net()
            .timeout_closes(TimeoutKind::Read)
            .fetch_add(2, Ordering::Relaxed);
        m.net().accept_backpressure.fetch_add(1, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("tgp_shed_by_cost_total 1"), "{text}");
        assert!(text.contains("tgp_open_connections 3"), "{text}");
        assert!(
            text.contains("tgp_timeout_closes_total{kind=\"read\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("tgp_timeout_closes_total{kind=\"write\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("tgp_timeout_closes_total{kind=\"idle\"} 0"),
            "{text}"
        );
        assert!(text.contains("tgp_accept_backpressure_total 1"), "{text}");
        assert!(text.contains("tgp_readiness_wakeups_total 0"), "{text}");
    }

    #[test]
    fn net_series_sum_across_two_loops_with_per_loop_labels() {
        let mut m = Metrics::default();
        m.set_net_loops(2);
        let loop0 = Arc::clone(m.net_for(0).unwrap());
        let loop1 = Arc::clone(m.net_for(1).unwrap());
        loop0.open_connections.fetch_add(3, Ordering::Relaxed);
        loop1.open_connections.fetch_add(5, Ordering::Relaxed);
        loop0.accepted_total.fetch_add(7, Ordering::Relaxed);
        loop1.accepted_total.fetch_add(2, Ordering::Relaxed);
        loop0.accept_backpressure.fetch_add(1, Ordering::Relaxed);
        loop1.accept_backpressure.fetch_add(4, Ordering::Relaxed);
        loop0
            .timeout_closes(TimeoutKind::Write)
            .fetch_add(2, Ordering::Relaxed);
        loop1
            .timeout_closes(TimeoutKind::Write)
            .fetch_add(1, Ordering::Relaxed);

        let text = m.render();
        // The unlabeled line is the sum over loops...
        assert!(text.contains("tgp_open_connections 8\n"), "{text}");
        assert!(
            text.contains("tgp_accepted_connections_total 9\n"),
            "{text}"
        );
        assert!(text.contains("tgp_accept_backpressure_total 5\n"), "{text}");
        assert!(
            text.contains("tgp_timeout_closes_total{kind=\"write\"} 3"),
            "{text}"
        );
        // ...and every loop renders its own labeled series.
        assert!(
            text.contains("tgp_open_connections{loop=\"0\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("tgp_open_connections{loop=\"1\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("tgp_accepted_connections_total{loop=\"0\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("tgp_accepted_connections_total{loop=\"1\"} 2"),
            "{text}"
        );

        // Loop teardown: the dying loop's own close path decrements its
        // gauge; because the total is a render-time sum (never copied
        // into a global), the aggregate drops by exactly that amount.
        loop1.open_connections.fetch_sub(5, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("tgp_open_connections 3\n"), "{text}");
        assert!(
            text.contains("tgp_open_connections{loop=\"1\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn single_loop_renders_no_loop_labels() {
        let m = Metrics::default();
        m.net().accepted_total.fetch_add(2, Ordering::Relaxed);
        let text = m.render();
        assert!(
            text.contains("tgp_accepted_connections_total 2\n"),
            "{text}"
        );
        assert!(!text.contains("loop=\""), "{text}");
    }

    #[test]
    fn deadline_drop_series_render_all_sites() {
        let m = Metrics::default();
        m.record_deadline_drop("queue");
        m.record_deadline_drop("solve");
        m.record_deadline_drop("solve");
        m.record_deadline_drop("no-such-site"); // ignored
        let text = m.render();
        assert!(
            text.contains("tgp_deadline_drops_total{where=\"queue\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("tgp_deadline_drops_total{where=\"solve\"} 2"),
            "{text}"
        );
        // Zero-count sites still render, so dashboards and the CI smoke
        // can rely on the full label set from the first scrape.
        assert!(
            text.contains("tgp_deadline_drops_total{where=\"admission\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("tgp_deadline_drops_total{where=\"batch\"} 0"),
            "{text}"
        );
        assert_eq!(m.deadline_drops(), 3);
    }

    #[test]
    fn store_series_render_and_track_backings() {
        let m = Metrics::default();
        // Zero-valued series render from the first scrape.
        let quiet = m.render();
        assert!(quiet.contains("tgp_graph_resident_bytes 0"), "{quiet}");
        assert!(quiet.contains("tgp_graph_spilled_total 0"), "{quiet}");
        assert!(
            quiet.contains("tgp_store_backing{kind=\"ram\"} 0"),
            "{quiet}"
        );
        assert!(
            quiet.contains("tgp_store_backing{kind=\"disk\"} 0"),
            "{quiet}"
        );

        m.record_store_backing("ram");
        m.record_store_backing("ram");
        m.record_store_backing("disk");
        m.record_store_backing("floppy"); // ignored, not a panic
        m.graph_resident_changed(4096);
        m.graph_resident_changed(-1024);
        let text = m.render();
        assert!(text.contains("tgp_graph_resident_bytes 3072"), "{text}");
        assert!(text.contains("tgp_graph_spilled_total 1"), "{text}");
        assert!(text.contains("tgp_store_backing{kind=\"ram\"} 2"), "{text}");
        assert!(
            text.contains("tgp_store_backing{kind=\"disk\"} 1"),
            "{text}"
        );
        assert_eq!(m.graphs_spilled(), 1);
        // The gauge never wraps below zero.
        m.graph_resident_changed(-1_000_000);
        assert!(m.render().contains("tgp_graph_resident_bytes 0"));
    }

    #[test]
    fn status_503_has_its_own_series_and_500_stays_catchall() {
        let m = Metrics::default();
        m.record_request("partition", 503, Duration::ZERO);
        m.record_request("partition", 501, Duration::ZERO); // unknown → folds to 500
        let text = m.render();
        assert!(text.contains("tgp_requests_total{endpoint=\"partition\",status=\"503\"} 1"));
        assert!(text.contains("tgp_requests_total{endpoint=\"partition\",status=\"500\"} 1"));
    }

    #[test]
    fn session_endpoint_and_conflict_status_have_their_own_series() {
        let m = Metrics::default();
        m.record_request("graphs", 200, Duration::from_micros(10));
        m.record_request("graphs", 409, Duration::from_micros(10));
        let text = m.render();
        assert!(text.contains("tgp_requests_total{endpoint=\"graphs\",status=\"200\"} 1"));
        assert!(text.contains("tgp_requests_total{endpoint=\"graphs\",status=\"409\"} 1"));
    }

    #[test]
    fn unknown_endpoint_and_status_fold_into_catchall() {
        let m = Metrics::default();
        m.record_request("mystery", 501, Duration::from_micros(10));
        let text = m.render();
        assert!(text.contains("tgp_requests_total{endpoint=\"other\",status=\"500\"} 1"));
    }
}
