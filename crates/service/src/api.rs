//! Request routing and the JSON API handlers.
//!
//! Endpoints:
//!
//! * `POST /v1/partition` — run any objective registered in
//!   [`tgp_solvers::Registry`] (all thirteen: chains, trees and general
//!   process graphs). Accepts a single request object or
//!   `{"requests": [...]}` for a batch; batch items are scattered
//!   across the worker pool and gathered back in order (see
//!   [`BatchSubtask`]).
//! * `POST /v1/simulate` — partition a chain and replay it through the
//!   shared-memory pipeline simulator.
//! * `GET /healthz` — liveness probe.
//! * `GET /metrics` — Prometheus text exposition.
//!
//! Handlers are pure functions of `(state, request)`; the transport layer
//! in [`crate::server`] owns sockets and threads. The partition endpoint
//! is a thin shell over the solver registry: dispatch resolves the
//! objective, the solver parses and runs, and the service only moves
//! bytes — which is what keeps HTTP responses byte-identical to the CLI's.
//!
//! # Error contract
//!
//! * `400` — the body is not usable JSON at all (bad UTF-8, syntax
//!   error, or the wrong JSON shape for the envelope).
//! * `422` — the body parsed but the request is semantically unusable:
//!   unknown objective, missing/invalid/undeclared field, wrong graph
//!   kind, cost-cap refusal, infeasible instance.
//! * `503` — shed (`shed_expensive`/`shed_deadline`) or cancelled
//!   mid-solve (`cancelled`).
//! * `504` — the request's deadline (`x-deadline-ms`, or a batch
//!   item's `deadline_ms`) expired before the solve completed
//!   (`deadline_exceeded`).
//!
//! Every error body is the v2 envelope from [`crate::envelope`]:
//! `{"code": <stable tag>, "message": <human text>, ...}` with optional
//! `retry_after`, `deadline_remaining_ms` and `partial` fields; the
//! codes for 422s come from [`SolveError::code`].
//!
//! Every partition response is cached under the solver's canonical key
//! ([`tgp_solvers::Solver::canonical_key`]) of the *validated* content,
//! so formatting differences (whitespace, key order) between equivalent
//! requests still hit.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use tgp_core::budget::Budget;
use tgp_core::pipeline::partition_chain_budgeted;
use tgp_graph::json::{FromJson, Value};
use tgp_graph::{json, PathGraph, Weight};
use tgp_net::ConnId;
use tgp_obs::trace::{self, SpanRecorder};
use tgp_obs::{EventKind, Journal, Stage, TraceId, TraceRecord, TraceStore};
use tgp_session::{Edit, SessionError, SessionStore, DEFAULT_SESSION_BUDGET};
use tgp_shmem::machine::{Interconnect, Machine};
use tgp_shmem::pipeline::{simulate_pipeline, PipelineSpec};
use tgp_solvers::{ingest_flat, FlatObjective, IngestBacking, KeyBuilder, Registry, SolveError};

use crate::cache::{CacheConfig, ResultCache};
use crate::envelope;
use crate::http::Request;
use crate::metrics::Metrics;
use crate::pool::{QueueSet, Work};

/// Events the in-memory journal retains (see `GET /debug/events`).
const JOURNAL_CAPACITY: usize = 4096;

/// Completed traces retained for `GET /debug/trace/<id>` and
/// `GET /debug/slow`.
const TRACE_CAPACITY: usize = 512;

/// Most journal events one `/debug/events` response returns.
const DEBUG_EVENTS_MAX: usize = 256;

/// Default and maximum `n` for `GET /debug/slow?n=`.
const DEBUG_SLOW_DEFAULT: usize = 10;
const DEBUG_SLOW_MAX: usize = 100;

/// Largest `items` accepted by `/v1/simulate`. The simulator schedules
/// one event per item, so this bounds per-request CPU and memory for a
/// field a client controls with a handful of bytes.
pub const MAX_SIMULATE_ITEMS: u64 = 1_000_000;

/// Largest `processors` accepted by `/v1/simulate`. The machine model
/// allocates per-processor state, so this bounds allocation the same
/// way.
pub const MAX_SIMULATE_PROCESSORS: u64 = 4_096;

/// Most subtasks one batch scatters onto the worker-pool queue. Larger
/// batches are split into contiguous *chunks* of items instead of one
/// subtask per item, so a thousand-item batch costs at most this many
/// queue operations rather than a thousand (ordering and the claim-based
/// deadlock-freedom argument are per-item and unaffected).
pub const MAX_BATCH_SUBTASKS: usize = 64;

/// Queue occupancy (numerator/denominator of capacity) at which the
/// cost-based admission guard starts shedding expensive requests.
const SHED_OCCUPANCY_NUM: usize = 3;
const SHED_OCCUPANCY_DEN: usize = 4;

/// Slots in the [`WritePending`] table (power of two). Connection slab
/// indexes map into it by masking, so servers with at most this many
/// concurrent connections never collide.
const WRITE_PENDING_SLOTS: usize = 1024;

/// Lock-free table of "response in flight on this connection" trace
/// ids, indexed by the connection's slab slot (spread by its owning
/// loop's shard id, since every loop has its own slot 0). The epoll
/// loop frames one request per connection at a time, so insert (worker,
/// before submit) and remove (loop, at write completion) for one
/// connection never race each other; the table only has to tolerate
/// *different* connections sharing a masked slot. On such a collision
/// the later insert wins and the earlier connection's removal sees a
/// token/shard mismatch — its write span is dropped (a debug-only
/// loss), never misattributed; the shard check is what keeps that
/// guarantee across loops, where `(index, generation)` alone can
/// coincide. This used to be a `Mutex<HashMap>`, but two lock
/// acquisitions per request on the hot path is exactly the kind of
/// overhead the <2% tracing budget (EXPERIMENTS.md §OBS) rules out.
struct WritePending {
    slots: Vec<PendingSlot>,
}

struct PendingSlot {
    token: AtomicU64,
    shard: AtomicU64,
    trace: AtomicU64,
    seq: AtomicU64,
}

/// "Slot empty" sentinel: a real token would need generation and index
/// both at `u32::MAX`.
const WRITE_PENDING_EMPTY: u64 = u64::MAX;

impl WritePending {
    fn new() -> Self {
        WritePending {
            slots: (0..WRITE_PENDING_SLOTS)
                .map(|_| PendingSlot {
                    token: AtomicU64::new(WRITE_PENDING_EMPTY),
                    shard: AtomicU64::new(0),
                    trace: AtomicU64::new(0),
                    seq: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn slot(&self, conn: ConnId) -> &PendingSlot {
        // Offset each loop's slab by a stride co-prime with the table
        // size, so concurrent loops' low slab indexes do not all fight
        // over the same few slots.
        let spread = (conn.index as usize).wrapping_add(conn.shard as usize * 61);
        &self.slots[spread & (WRITE_PENDING_SLOTS - 1)]
    }

    fn insert(&self, conn: ConnId, trace: TraceId, seq: u64) {
        let slot = self.slot(conn);
        slot.shard.store(u64::from(conn.shard), Ordering::Relaxed);
        slot.trace.store(trace.as_u64(), Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Relaxed);
        // Release-publish after the payload stores so a remover that
        // sees our token also sees our shard, trace id and sequence.
        slot.token.store(conn.token(), Ordering::Release);
    }

    fn remove(&self, conn: ConnId) -> Option<(TraceId, u64)> {
        let slot = self.slot(conn);
        if slot.token.load(Ordering::Acquire) != conn.token()
            || slot.shard.load(Ordering::Relaxed) != u64::from(conn.shard)
        {
            return None; // canned error, or lost to a collision
        }
        slot.token.store(WRITE_PENDING_EMPTY, Ordering::Relaxed);
        Some((
            TraceId::from_u64(slot.trace.load(Ordering::Relaxed)),
            slot.seq.load(Ordering::Relaxed),
        ))
    }
}

impl std::fmt::Debug for WritePending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let occupied = self
            .slots
            .iter()
            .filter(|s| s.token.load(Ordering::Relaxed) != WRITE_PENDING_EMPTY)
            .count();
        f.debug_struct("WritePending")
            .field("slots", &self.slots.len())
            .field("occupied", &occupied)
            .finish()
    }
}

/// Shared handler state: one per server.
#[derive(Debug)]
pub struct AppState {
    /// Rendered-response cache.
    pub cache: ResultCache,
    /// Service metrics.
    pub metrics: Metrics,
    /// Emit one structured access-log line per request to stderr.
    pub log_requests: bool,
    /// Recent-events journal, shared with the transport layer (the
    /// epoll loop appends accept/close/timeout events; workers append
    /// request-scoped events).
    pub journal: Arc<Journal>,
    /// Recently completed request traces.
    pub traces: TraceStore,
    /// Serve the `/debug/*` surfaces (off by default: they expose
    /// request timing internals).
    pub debug_endpoints: bool,
    /// Resident session graphs (`/v1/graphs`). In-memory by default;
    /// the server swaps in a journal-backed store via
    /// [`AppState::with_sessions`] when `--session-file` is set.
    pub sessions: Arc<SessionStore>,
    /// Trace ids of responses currently being flushed by the epoll
    /// loop, keyed by connection (one in-flight response per
    /// connection). Lets [`AppState::complete_write`] attribute the
    /// write duration to the right trace after commit.
    write_pending: WritePending,
    /// The worker-pool queues batch handlers scatter subtasks onto —
    /// one per event loop, round-robined by [`QueueSet`]. Unset when
    /// the state runs without a pool (unit tests, embedders calling
    /// [`handle`] directly) — batches then execute inline.
    fanout: OnceLock<Arc<QueueSet<Work>>>,
    /// Cost-based admission limit: with `Some(limit)`, a cache-missing
    /// request whose [`tgp_solvers::Solver::cost_estimate`] exceeds
    /// `limit` is refused with 503 (`shed_expensive`) while the worker
    /// queue is nearly full. `None` disables shedding.
    shed_cost: Option<u64>,
    /// Remaining-time admission limit: with `Some(ms)`, a cache-missing
    /// request whose deadline has fewer than `ms` milliseconds left is
    /// refused with 503 (`shed_deadline`) while the worker queue is
    /// nearly full — the solve would almost certainly time out anyway,
    /// so the slot goes to a request that can still make its deadline.
    shed_remaining: Option<u64>,
    /// Previous full response per `(graph id, warm key)`, kept so
    /// `POST /v1/graphs/<id>/partition` can answer `"response": "delta"`
    /// requests with only the fields that changed since the last solve.
    /// Written under the resident graph's lock, so per-graph updates
    /// serialize with the solves that produce them.
    last_solves: Mutex<HashMap<(String, Vec<u8>), String>>,
    /// Bodies at or above this size take the flat-ingest path with
    /// *disk* (mmap) backing instead of RAM (`--graph-spill-bytes`).
    graph_spill_bytes: u64,
    /// Directory for spill files; `None` uses the system temp dir.
    graph_spill_dir: Option<PathBuf>,
}

impl AppState {
    /// Creates state with a cache under the given policy.
    pub fn new(cache: CacheConfig) -> Self {
        AppState {
            cache: ResultCache::new(cache),
            metrics: Metrics::default(),
            log_requests: false,
            journal: Arc::new(Journal::new(JOURNAL_CAPACITY)),
            traces: TraceStore::new(TRACE_CAPACITY),
            debug_endpoints: false,
            sessions: Arc::new(SessionStore::new(DEFAULT_SESSION_BUDGET)),
            write_pending: WritePending::new(),
            fanout: OnceLock::new(),
            shed_cost: None,
            shed_remaining: None,
            last_solves: Mutex::new(HashMap::new()),
            graph_spill_bytes: 64 << 20,
            graph_spill_dir: None,
        }
    }

    /// Sets the flat-ingest spill policy: bodies at or above `bytes`
    /// ingest into disk-backed (mmap) arrays rooted at `dir` (the
    /// system temp dir when `None`); smaller eligible bodies use flat
    /// RAM arrays.
    pub fn with_graph_spill(mut self, bytes: u64, dir: Option<PathBuf>) -> Self {
        self.graph_spill_bytes = bytes;
        self.graph_spill_dir = dir;
        self
    }

    /// The HTTP layer's body-spill policy, derived from the same knobs
    /// as flat ingest: request bodies at or past `--graph-spill-bytes`
    /// stream into an unlinked spill file while being read instead of
    /// sitting on a worker's heap.
    pub(crate) fn body_spill(&self) -> crate::http::BodySpill {
        crate::http::BodySpill {
            threshold: usize::try_from(self.graph_spill_bytes).unwrap_or(usize::MAX),
            dir: self
                .graph_spill_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir),
        }
    }

    /// Replaces the session store (the server injects a journal-backed
    /// one when `--session-file` is set).
    pub fn with_sessions(mut self, sessions: Arc<SessionStore>) -> Self {
        self.sessions = sessions;
        self
    }

    /// Enables or disables the per-request access log.
    pub fn with_access_log(mut self, enabled: bool) -> Self {
        self.log_requests = enabled;
        self
    }

    /// Enables or disables the `/debug/*` endpoints.
    pub fn with_debug_endpoints(mut self, enabled: bool) -> Self {
        self.debug_endpoints = enabled;
        self
    }

    /// Remembers which trace's response is about to be flushed on
    /// `conn` by the epoll loop, so [`AppState::complete_write`] can
    /// attribute the write duration. `seq` is the trace's commit
    /// handle ([`ApiResponse::trace_seq`]). Must be called *before*
    /// the response is submitted to the loop.
    pub fn note_write_pending(&self, conn: ConnId, trace: TraceId, seq: Option<u64>) {
        if let Some(seq) = seq {
            if !trace.is_none() {
                self.write_pending.insert(conn, trace, seq);
            }
        }
    }

    /// Write completion from the transport: records the `write` stage
    /// and patches the span into the committed trace. Safe for
    /// responses with no pending trace (canned errors, frame errors).
    pub fn complete_write(&self, conn: ConnId, elapsed: Duration) {
        let pending = self.write_pending.remove(conn);
        self.metrics.record_stage(Stage::Write, elapsed);
        let id = match pending {
            Some((id, seq)) => {
                self.traces.append_span_at(seq, id, Stage::Write, elapsed);
                id
            }
            None => TraceId::NONE,
        };
        if self.debug_endpoints {
            self.journal.append(
                EventKind::WriteDone,
                id.as_u64(),
                u64::from(conn.index),
                elapsed.as_nanos() as u64,
            );
        }
    }

    /// Sets the cost-based admission limit (see the `shed_cost` field).
    pub fn with_shed_cost(mut self, limit: Option<u64>) -> Self {
        self.shed_cost = limit;
        self
    }

    /// Sets the remaining-time admission limit (see the
    /// `shed_remaining` field).
    pub fn with_shed_remaining(mut self, limit: Option<u64>) -> Self {
        self.shed_remaining = limit;
        self
    }

    /// Whether the worker queue is under enough pressure for the
    /// admission guards to start shedding (at least 3/4 full).
    fn queue_pressured(&self) -> bool {
        match self.fanout.get() {
            Some(pool) => pool.len() * SHED_OCCUPANCY_DEN >= pool.capacity() * SHED_OCCUPANCY_NUM,
            None => false,
        }
    }

    /// The admission guard: decides whether a cache-missing request of
    /// the given estimated cost and deadline should be refused right
    /// now. Sheds only when a limit is configured, a pool is attached
    /// and the queue is at least 3/4 full; then a request more expensive
    /// than `--shed-cost` is refused (`shed_expensive`), and a request
    /// with less than `--shed-remaining` milliseconds of deadline left
    /// is refused (`shed_deadline`) — it would almost certainly time out
    /// mid-solve and waste the slot. Cheap requests with time to spare
    /// keep flowing even under pressure, and cache *hits* never reach
    /// this check at all.
    fn shed_verdict(&self, cost: u64, deadline: Option<Instant>) -> Option<Failure> {
        if !self.queue_pressured() {
            return None;
        }
        if let Some(limit) = self.shed_cost {
            if cost > limit {
                self.metrics.record_shed_by_cost();
                let mut f = failure(
                    503,
                    format!(
                        "estimated cost {cost} exceeds the shed limit {limit} while the queue is \
                         nearly full; retry when load drops"
                    ),
                    "shed_expensive",
                );
                let queued = self.fanout.get().map_or(0, |pool| pool.len());
                f.retry_after = Some(crate::http::retry_after_secs(queued, 1).min(5));
                return Some(f);
            }
        }
        if let (Some(limit), Some(deadline)) = (self.shed_remaining, deadline) {
            let remaining = remaining_ms(deadline);
            if remaining < limit {
                self.metrics.record_deadline_drop("admission");
                let mut f = failure(
                    503,
                    format!(
                        "only {remaining}ms of the deadline remain, below the shed threshold of \
                         {limit}ms while the queue is nearly full"
                    ),
                    "shed_deadline",
                );
                f.deadline_remaining_ms = Some(remaining);
                return Some(f);
            }
        }
        None
    }

    /// Attaches the worker-pool queues so batch requests can scatter
    /// subtasks across them. Called once by
    /// [`crate::server::Server::start`]; later calls are ignored.
    pub fn attach_pool(&self, pool: Arc<QueueSet<Work>>) {
        let _ = self.fanout.set(pool);
    }

    /// Grows the per-loop connection counters to `loops` sets (see
    /// [`Metrics::set_net_loops`]); call before the state is shared.
    pub fn with_net_loops(mut self, loops: usize) -> Self {
        self.metrics.set_net_loops(loops);
        self
    }
}

/// What a handler tells the transport to send.
#[derive(Debug)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: String,
    /// `content-type` header value.
    pub content_type: &'static str,
    /// Metrics endpoint label.
    pub endpoint: &'static str,
    /// Objective label for the access log: the dispatched solver's name,
    /// `"batch"` for batch requests, `"-"` when no objective applies.
    pub objective: &'static str,
    /// The request's trace id ([`TraceId::NONE`] until
    /// [`handle_traced`] stamps it).
    pub trace: TraceId,
    /// The trace's commit sequence in [`AppState::traces`] — the O(1)
    /// handle the transport uses to patch the `write` span in after
    /// the response is flushed. `None` until [`handle_traced`] commits.
    pub trace_seq: Option<u64>,
    /// Extra response headers (name, value) — the session partition
    /// endpoint signals `x-tgp-solve: warm|cold` here so response
    /// *bodies* stay byte-identical across warm and cold paths.
    pub headers: Vec<(&'static str, String)>,
}

fn json_response(status: u16, endpoint: &'static str, body: String) -> ApiResponse {
    ApiResponse {
        status,
        body,
        content_type: "application/json",
        endpoint,
        objective: "-",
        trace: TraceId::NONE,
        trace_seq: None,
        headers: Vec::new(),
    }
}

/// A handler-level failure: status code, human message, stable code,
/// plus the optional v2 envelope fields.
#[derive(Debug, Clone)]
struct Failure {
    status: u16,
    message: String,
    code: &'static str,
    /// Seconds to wait before retrying; also emitted as a `retry-after`
    /// response header.
    retry_after: Option<u64>,
    /// Milliseconds the request's deadline had left when it failed
    /// (zero once expired).
    deadline_remaining_ms: Option<u64>,
}

impl Failure {
    fn body(&self) -> String {
        envelope::envelope_body(
            self.code,
            &self.message,
            self.retry_after,
            self.deadline_remaining_ms,
            false,
        )
    }

    /// Whether this failure means the solve was interrupted by its
    /// budget (deadline or cancel) rather than rejected.
    fn is_interrupt(&self) -> bool {
        matches!(self.code, "deadline_exceeded" | "cancelled")
    }
}

fn failure(status: u16, message: impl Into<String>, code: &'static str) -> Failure {
    Failure {
        status,
        message: message.into(),
        code,
        retry_after: None,
        deadline_remaining_ms: None,
    }
}

/// 400: the body never made it to a JSON object.
fn bad(message: impl Into<String>) -> Failure {
    failure(400, message, "bad_request")
}

/// A registry-level rejection carrying the solver error's code: 422 for
/// semantic rejections, 504 when the request's deadline interrupted the
/// solve, 503 when the cooperative cancel flag did.
fn solve_failure(error: SolveError) -> Failure {
    let mut f = match &error {
        SolveError::DeadlineExceeded => failure(504, error.to_string(), error.code()),
        SolveError::Cancelled => failure(503, error.to_string(), error.code()),
        _ => failure(422, error.to_string(), error.code()),
    };
    if matches!(error, SolveError::DeadlineExceeded) {
        f.deadline_remaining_ms = Some(0);
    }
    f
}

fn error_response(endpoint: &'static str, failure: &Failure) -> ApiResponse {
    let mut response = json_response(failure.status, endpoint, failure.body());
    if let Some(secs) = failure.retry_after {
        response.headers.push(("retry-after", secs.to_string()));
    }
    response
}

/// Transport-level rejection: 404 (`not_found`) or 405
/// (`method_not_allowed`), in the same v2 envelope as every other
/// error.
fn simple_error(status: u16, endpoint: &'static str, message: &str) -> ApiResponse {
    let code = match status {
        404 => "not_found",
        405 => "method_not_allowed",
        _ => "bad_request",
    };
    json_response(
        status,
        endpoint,
        envelope::envelope_body(code, message, None, None, false),
    )
}

/// Milliseconds until `deadline`, saturating at zero.
fn remaining_ms(deadline: Instant) -> u64 {
    let now = Instant::now();
    if deadline <= now {
        0
    } else {
        u64::try_from((deadline - now).as_millis()).unwrap_or(u64::MAX)
    }
}

/// Transport-supplied timing context for one request: when and where
/// it entered the system. [`RequestCtx::default`] (no queue history,
/// "now" as the base) fits embedders that call [`handle`] directly.
#[derive(Debug, Clone, Copy)]
pub struct RequestCtx {
    /// Trace id minted by the transport before parse;
    /// [`TraceId::NONE`] to mint (or adopt) one at handle time.
    pub trace: TraceId,
    /// When the work was pushed onto the worker queue, if it queued.
    pub enqueued_at: Option<Instant>,
    /// When a worker picked the work up (the trace base when nothing
    /// queued).
    pub dequeued_at: Instant,
    /// Time spent parsing the request bytes (in threads mode this
    /// includes the blocking socket read).
    pub parse: Duration,
    /// Absolute deadline the transport already extracted from the
    /// request (epoll mode reads `x-deadline-ms` at frame time). `None`
    /// lets [`handle_traced`] fall back to parsing the header itself.
    pub deadline: Option<Instant>,
}

impl Default for RequestCtx {
    fn default() -> Self {
        RequestCtx {
            trace: TraceId::NONE,
            enqueued_at: None,
            dequeued_at: Instant::now(),
            parse: Duration::ZERO,
            deadline: None,
        }
    }
}

/// The client-requested deadline header: a whole number of milliseconds
/// the client is willing to wait, anchored at `anchor` (the moment the
/// request was fully read). Returns `Err` on a malformed value.
pub const DEADLINE_HEADER: &str = "x-deadline-ms";

fn effective_deadline(
    req: &Request,
    ctx: &RequestCtx,
    anchor: Instant,
) -> Result<Option<Instant>, Failure> {
    if ctx.deadline.is_some() {
        return Ok(ctx.deadline);
    }
    match req.header(DEADLINE_HEADER) {
        None => Ok(None),
        Some(text) => match text.trim().parse::<u64>() {
            Ok(ms) => Ok(Some(anchor + Duration::from_millis(ms))),
            Err(_) => Err(bad(format!(
                "{DEADLINE_HEADER} must be a non-negative integer of milliseconds, got {text:?}"
            ))),
        },
    }
}

/// Routes one request, records its metrics, and (when enabled) writes
/// one structured access-log line to stderr. Embedder-facing shorthand
/// for [`handle_traced`] with an empty [`RequestCtx`].
pub fn handle(state: &AppState, req: &Request) -> ApiResponse {
    handle_traced(state, req, RequestCtx::default())
}

/// [`handle`] with transport timing: runs the request under a trace
/// (client `x-trace-id`/`traceparent` headers win over the transport's
/// minted id), records queue/parse spans from `ctx`, per-stage
/// histograms, the journal `respond` event, and commits the trace to
/// [`AppState::traces`]. The `write` stage happens after this returns
/// and is patched in by the transport ([`AppState::complete_write`] in
/// epoll mode, the connection server in threads mode).
///
/// Trace records and journal events exist only to be read back through
/// `GET /debug/*`, so both are captured only while
/// [`AppState::debug_endpoints`] is set; with the flag off the hot path
/// pays for the `/metrics` histograms and the access log alone.
pub fn handle_traced(state: &AppState, req: &Request, ctx: RequestCtx) -> ApiResponse {
    // Parsing finished the moment the transport built `ctx`, so the
    // handler clock starts there — derived, not a fresh clock read.
    let started = ctx.dequeued_at + ctx.parse;
    let id = req
        .header("x-trace-id")
        .and_then(TraceId::parse_hex)
        .or_else(|| {
            req.header("traceparent")
                .and_then(TraceId::from_traceparent)
        })
        .unwrap_or(ctx.trace);
    let id = if id.is_none() { TraceId::mint() } else { id };
    let base = ctx.enqueued_at.unwrap_or(ctx.dequeued_at);
    let queue_wait = ctx.dequeued_at.saturating_duration_since(base);
    if ctx.enqueued_at.is_some() {
        state.metrics.record_stage(Stage::Queue, queue_wait);
    }
    if !ctx.parse.is_zero() {
        state.metrics.record_stage(Stage::Parse, ctx.parse);
    }
    // Trace and journal capture only feed the `/debug/*` surfaces, so
    // they are captured only when those surfaces are being served; the
    // `/metrics` histograms above stay on unconditionally.
    if state.debug_endpoints {
        let mut recorder = SpanRecorder::new(id, base);
        recorder.add(Stage::Queue, base, queue_wait);
        recorder.add(Stage::Parse, ctx.dequeued_at, ctx.parse);
        trace::begin(recorder);
    }

    let mut response = match effective_deadline(req, &ctx, started) {
        Ok(deadline) => route(state, req, deadline),
        Err(failure) => error_response("other", &failure),
    };
    // One clock read closes the request: handler elapsed, the journal
    // timestamp, the end-to-end total and the trace total all share it.
    let done = Instant::now();
    let elapsed = done.saturating_duration_since(started);
    state
        .metrics
        .record_request(response.endpoint, response.status, elapsed);
    if state.debug_endpoints {
        state.journal.append_at(
            done,
            EventKind::Respond,
            id.as_u64(),
            u64::from(response.status),
            elapsed.as_nanos() as u64,
        );
        if let Some(record) =
            trace::finish_at(done, response.endpoint, response.objective, response.status)
        {
            response.trace_seq = Some(state.traces.commit(record));
        }
    }
    if state.log_requests {
        let total = done.saturating_duration_since(base);
        eprintln!(
            "tgp-access method={} path={} objective={} status={} micros={} queue_us={} total_us={} trace={}",
            req.method,
            req.path,
            response.objective,
            response.status,
            elapsed.as_micros(),
            queue_wait.as_micros(),
            total.as_micros(),
            id
        );
    }
    response.trace = id;
    response
}

fn route(state: &AppState, req: &Request, deadline: Option<Instant>) -> ApiResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => json_response(200, "healthz", "{\"status\":\"ok\"}\n".into()),
        ("GET", "/metrics") => {
            let mut body = state.metrics.render();
            state.cache.render_metrics(&mut body);
            state.sessions.render_metrics(&mut body);
            render_journal_metrics(state, &mut body);
            ApiResponse {
                status: 200,
                body,
                content_type: "text/plain; version=0.0.4",
                endpoint: "metrics",
                objective: "-",
                trace: TraceId::NONE,
                trace_seq: None,
                headers: Vec::new(),
            }
        }
        ("POST", "/v1/partition") => partition_endpoint(state, &req.body, deadline),
        ("POST", "/v1/simulate") => simulate_endpoint(state, &req.body, deadline),
        ("POST", "/v1/graphs") => graphs_register(state, &req.body),
        ("GET", "/v1/graphs") => {
            json_response(200, "graphs", format!("{}\n", state.sessions.list()))
        }
        (method, path) if path.starts_with("/v1/graphs/") => {
            graphs_item(state, method, path, &req.body, deadline)
        }
        ("GET", path) if path.starts_with("/debug/") => debug_endpoint(state, path),
        (_, "/healthz") | (_, "/metrics") | (_, "/v1/partition") | (_, "/v1/simulate") => {
            simple_error(405, "other", "method not allowed")
        }
        (_, "/v1/graphs") => simple_error(405, "graphs", "method not allowed"),
        _ => simple_error(404, "other", "no such endpoint"),
    }
}

/// Journal health series appended to `/metrics`.
fn render_journal_metrics(state: &AppState, out: &mut String) {
    out.push_str("# HELP tgp_journal_events_total Events appended to the in-memory journal.\n");
    out.push_str("# TYPE tgp_journal_events_total counter\n");
    out.push_str(&format!(
        "tgp_journal_events_total {}\n",
        state.journal.appended()
    ));
    out.push_str(
        "# HELP tgp_journal_overwritten_total Journal events lost to drop-oldest overwrite.\n",
    );
    out.push_str("# TYPE tgp_journal_overwritten_total counter\n");
    out.push_str(&format!(
        "tgp_journal_overwritten_total {}\n",
        state.journal.overwritten()
    ));
    out.push_str("# HELP tgp_traces_retained Completed request traces currently retained.\n");
    out.push_str("# TYPE tgp_traces_retained gauge\n");
    out.push_str(&format!("tgp_traces_retained {}\n", state.traces.len()));
}

/// `GET /debug/*`: trace and journal inspection, served only when
/// `--debug-endpoints` is set. When disabled the paths are
/// indistinguishable from unknown endpoints (404, `other`).
fn debug_endpoint(state: &AppState, path: &str) -> ApiResponse {
    if !state.debug_endpoints {
        return simple_error(404, "other", "no such endpoint");
    }
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, q),
        None => (path, ""),
    };
    if let Some(id_text) = route.strip_prefix("/debug/trace/") {
        let Some(id) = TraceId::parse_hex(id_text) else {
            return error_response("debug", &bad("trace id must be 1-16 hex chars"));
        };
        return match state.traces.get(id) {
            Some(record) => json_response(200, "debug", format!("{}\n", render_trace(&record))),
            None => error_response(
                "debug",
                &failure(
                    404,
                    "trace not found (expired from the ring or never existed)",
                    "not_found",
                ),
            ),
        };
    }
    match route {
        "/debug/slow" => {
            let n = query
                .split('&')
                .find_map(|pair| pair.strip_prefix("n="))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(DEBUG_SLOW_DEFAULT)
                .clamp(1, DEBUG_SLOW_MAX);
            let traces: Vec<Value> = state.traces.slowest(n).iter().map(render_trace).collect();
            json_response(200, "debug", format!("{}\n", json!({ "traces": traces })))
        }
        "/debug/events" => {
            let events: Vec<Value> = state
                .journal
                .snapshot(DEBUG_EVENTS_MAX)
                .iter()
                .map(|e| {
                    let trace = if e.trace == 0 {
                        "-".to_string()
                    } else {
                        format!("{:016x}", e.trace)
                    };
                    json!({
                        "seq": e.seq,
                        "nanos": e.nanos,
                        "kind": e.kind.as_str(),
                        "trace": trace,
                        "a": e.a,
                        "b": e.b,
                    })
                })
                .collect();
            json_response(
                200,
                "debug",
                format!(
                    "{}\n",
                    json!({
                        "appended": state.journal.appended(),
                        "overwritten": state.journal.overwritten(),
                        "events": events,
                    })
                ),
            )
        }
        _ => simple_error(404, "other", "no such endpoint"),
    }
}

/// Renders one trace as the `/debug/trace/<id>` JSON shape. Durations
/// are floored to microseconds, so rendered span durations sum to at
/// most the rendered total (flooring each term of `sum(spans) <=
/// total` keeps the inequality).
fn render_trace(record: &TraceRecord) -> Value {
    let spans: Vec<Value> = record
        .spans
        .iter()
        .map(|s| {
            json!({
                "stage": s.stage.as_str(),
                "start_us": s.start_ns / 1_000,
                "dur_us": s.dur_ns / 1_000,
            })
        })
        .collect();
    json!({
        "trace": record.id.to_string(),
        "endpoint": record.endpoint,
        "objective": record.objective,
        "status": u64::from(record.status),
        "total_us": record.total_ns / 1_000,
        "spans": spans,
    })
}

fn parse_body(body: &[u8]) -> Result<Value, Failure> {
    let text = std::str::from_utf8(body).map_err(|_| bad("request body is not UTF-8"))?;
    Value::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))
}

/// Parse-throughput estimate (bytes per millisecond, ~50 MB/s) used to
/// refuse bodies that cannot plausibly finish parsing inside their
/// deadline. The estimate deliberately errs toward refusing: a body
/// whose parse alone would eat most of the deadline leaves nothing for
/// the solve, so the solver's budget pre-charge would kill the request
/// right after the (expensive) decode anyway. Bodies under the floor
/// still get the cooperative mid-parse poll as a safety net.
const PARSE_BYTES_PER_MS: u64 = 50_000;

/// As [`parse_body`], but deadline-aware in two layers: a body so large
/// it cannot finish parsing inside its remaining deadline (by the
/// generous [`PARSE_BYTES_PER_MS`] floor) is refused before the first
/// byte is decoded, and a parse that outlives its deadline anyway is
/// abandoned within a few thousand values by the parser's cooperative
/// check. Either way the worker answers 504 (drop site `parse`) in
/// microseconds-to-milliseconds instead of decoding megabytes for a
/// doomed request. Without a deadline this is byte-for-byte
/// [`parse_body`].
fn parse_body_budgeted(
    state: &AppState,
    body: &[u8],
    deadline: Option<Instant>,
) -> Result<Value, Failure> {
    let Some(deadline) = deadline else {
        return parse_body(body);
    };
    let remaining = remaining_ms(deadline);
    if body.len() as u64 / PARSE_BYTES_PER_MS > remaining {
        state.metrics.record_deadline_drop("parse");
        let mut f = failure(
            504,
            format!(
                "a {} byte body cannot be parsed within the {remaining}ms left of the deadline",
                body.len()
            ),
            "deadline_exceeded",
        );
        f.deadline_remaining_ms = Some(remaining);
        return Err(f);
    }
    let text = std::str::from_utf8(body).map_err(|_| bad("request body is not UTF-8"))?;
    let mut expired = || Instant::now() >= deadline;
    Value::parse_with_check(text, &mut expired).map_err(|e| {
        if e.interrupted {
            state.metrics.record_deadline_drop("parse");
            let mut f = failure(
                504,
                "deadline expired while the request body was being parsed",
                "deadline_exceeded",
            );
            f.deadline_remaining_ms = Some(0);
            f
        } else {
            bad(format!("invalid JSON: {e}"))
        }
    })
}

fn partition_endpoint(state: &AppState, body: &[u8], deadline: Option<Instant>) -> ApiResponse {
    // Streaming flat-ingest fast path: a single request naming a
    // flat-capable objective scans straight into `tgp-store` arrays
    // (disk-backed past `--graph-spill-bytes`) without materializing a
    // JSON tree. Anything else — batches, other objectives, malformed
    // bodies — falls through untouched, so the legacy registry path
    // keeps sole ownership of the canonical error behavior.
    if let Some(response) = partition_flat(state, body, deadline) {
        return response;
    }
    let value = match parse_body_budgeted(state, body, deadline) {
        Ok(v) => v,
        Err(failure) => return error_response("partition", &failure),
    };
    // Batch form: {"requests": [...]}. The batch itself is 200 as long
    // as the envelope parses; per-item failures are reported in place so
    // one bad graph doesn't void its siblings. Items are scattered
    // across the worker pool and gathered back in request order.
    if let Some(requests) = value.get("requests") {
        let Some(items) = requests.as_array() else {
            return error_response("partition", &bad("\"requests\" must be an array"));
        };
        let compat = match value.get("compat") {
            None => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => {
                return error_response("partition", &bad("\"compat\" must be a boolean"));
            }
        };
        let prepared = prepare_batch_items(items.to_vec(), deadline);
        let outcomes = run_batch(state, prepared);
        let body = if compat {
            // Deprecated v1 shape: each result is either the response
            // object or {"error", "code"} in place — kept one release
            // for clients that haven't migrated (docs/SERVICE.md).
            let results: Vec<Value> = outcomes
                .into_iter()
                .map(|outcome| match outcome {
                    Ok(rendered) => Value::parse(&rendered).expect("rendered response is JSON"),
                    Err(failure) => json!({
                        "error": failure.message.as_str(),
                        "code": failure.code,
                    }),
                })
                .collect();
            format!("{}\n", json!({ "results": results }))
        } else {
            // v2 envelope: every item is tagged with its index and an
            // HTTP-style status, the batch reports aggregate counts so
            // callers can check success without walking the array, and
            // items the deadline interrupted are marked `partial` (as
            // is the batch itself, at top level).
            let mut completed = 0u64;
            let mut failed = 0u64;
            let mut partial = false;
            let results: Vec<Value> = outcomes
                .into_iter()
                .enumerate()
                .map(|(index, outcome)| match outcome {
                    Ok(rendered) => {
                        completed += 1;
                        json!({
                            "index": index as u64,
                            "status": 200u64,
                            "body": Value::parse(&rendered).expect("rendered response is JSON"),
                        })
                    }
                    Err(failure) => {
                        failed += 1;
                        let dropped = failure.is_interrupt();
                        partial |= dropped;
                        json!({
                            "index": index as u64,
                            "status": u64::from(failure.status),
                            "body": envelope::envelope_value(
                                failure.code,
                                &failure.message,
                                failure.retry_after,
                                failure.deadline_remaining_ms,
                                dropped,
                            ),
                        })
                    }
                })
                .collect();
            let mut top: Vec<(String, Value)> = vec![
                ("completed".to_string(), Value::from(completed)),
                ("failed".to_string(), Value::from(failed)),
            ];
            if partial {
                top.push(("partial".to_string(), Value::Bool(true)));
            }
            top.push(("results".to_string(), Value::Array(results)));
            format!("{}\n", Value::Object(top))
        };
        let mut response = json_response(200, "partition", body);
        response.objective = "batch";
        return response;
    }
    let objective = dispatched_objective(&value);
    let mut response = match partition_one(state, &value, deadline) {
        Ok(rendered) => json_response(200, "partition", format!("{rendered}\n")),
        Err(failure) => error_response("partition", &failure),
    };
    response.objective = objective;
    response
}

/// The flat-ingest half of `POST /v1/partition`: streams the raw body
/// into a [`tgp_solvers::FlatRequest`] (RAM arrays below
/// [`AppState::with_graph_spill`]'s threshold, unlinked-mmap disk
/// arrays at or above it) and solves over the flat substrate. The
/// ingest scan is recorded as the `ingest` stage; the graph's backing
/// and resident bytes land in the `tgp_store_backing` /
/// `tgp_graph_resident_bytes` series.
///
/// Returns `None` when the body is not eligible (batch envelope,
/// non-flat objective, unexpected field, malformed JSON, spill dir
/// unwritable…) — responses and cache keys are byte-identical to the
/// legacy path's, so falling through is always safe, and *only* the
/// legacy path renders errors, so the two paths cannot drift apart on
/// failure bodies. The one exception is a deadline that expires during
/// the ingest scan itself, answered as a parse-stage expiry.
fn partition_flat(state: &AppState, body: &[u8], deadline: Option<Instant>) -> Option<ApiResponse> {
    let started = Instant::now();
    let backing = if body.len() as u64 >= state.graph_spill_bytes {
        IngestBacking::disk(
            state
                .graph_spill_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir),
        )
    } else {
        IngestBacking::Ram
    };
    let budget = match deadline {
        Some(d) => Budget::with_deadline(d),
        None => Budget::unlimited(),
    };
    let (outcome, ingest_done) = timed_stage_from(state, Stage::Ingest, started, || {
        ingest_flat(body, &backing, &budget)
    });
    let request = match outcome {
        Ok(Some(request)) => request,
        Ok(None) => return None,
        Err(error) => {
            // The budget interrupted the ingest scan: same accounting
            // as a deadline expiring inside the legacy parse.
            if matches!(error, SolveError::DeadlineExceeded) {
                state.metrics.record_deadline_drop("parse");
            }
            return Some(error_response("partition", &solve_failure(error)));
        }
    };
    let objective = request.objective.name();
    state
        .metrics
        .record_store_backing(request.graph.backing_kind().as_str());
    let resident = request.graph.resident_bytes();
    state.metrics.graph_resident_changed(resident as i64);
    let key = request.canonical_key();
    let cost = request.cost_estimate();
    let outcome = with_cache(state, &key, cost, deadline, || {
        let (response, solve_done) = timed_stage_from(state, Stage::Solve, ingest_done, || {
            request.run_budgeted(&budget).map_err(solve_failure)
        });
        let response = response?;
        let (rendered, _) = timed_stage_from(state, Stage::Serialize, solve_done, || {
            // Identical to the legacy `solver.to_json(&response)`
            // rendering: the default `to_json` is the response value.
            response.value.to_string()
        });
        Ok(rendered)
    });
    state.metrics.graph_resident_changed(-(resident as i64));
    let registry = Registry::shared();
    let mut response = match outcome {
        Ok(rendered) => {
            if let Some((index, _)) = registry.get(objective) {
                state
                    .metrics
                    .record_objective(index, true, started.elapsed());
            }
            json_response(200, "partition", format!("{rendered}\n"))
        }
        Err(failure) => {
            if let Some((index, _)) = registry.get(objective) {
                state
                    .metrics
                    .record_objective(index, false, started.elapsed());
            }
            note_interrupt(state, &failure, started);
            error_response("partition", &failure)
        }
    };
    response.objective = objective;
    Some(response)
}

/// One prepared batch item: the request object with its (already
/// removed) per-item `deadline_ms` resolved against the batch-level
/// deadline, or the failure its preparation produced.
type BatchItem = Result<(Value, Option<Instant>), Failure>;

/// Resolves each item's effective deadline: the per-item `deadline_ms`
/// field (removed before dispatch — solvers reject undeclared fields)
/// anchored at batch start, clipped by the request-level deadline.
fn prepare_batch_items(items: Vec<Value>, deadline: Option<Instant>) -> Vec<BatchItem> {
    let anchor = Instant::now();
    items
        .into_iter()
        .map(|mut item| {
            let own = take_deadline_ms(&mut item)?.map(|ms| anchor + Duration::from_millis(ms));
            let effective = match (own, deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            Ok((item, effective))
        })
        .collect()
}

/// Removes and parses a batch item's `"deadline_ms"` field, if any.
fn take_deadline_ms(item: &mut Value) -> Result<Option<u64>, Failure> {
    let Value::Object(entries) = item else {
        return Ok(None);
    };
    let Some(pos) = entries.iter().position(|(k, _)| k == "deadline_ms") else {
        return Ok(None);
    };
    let (_, v) = entries.remove(pos);
    match v.as_u64() {
        Some(ms) => Ok(Some(ms)),
        None => Err(invalid_field(
            "deadline_ms",
            "must be a non-negative integer of milliseconds",
        )),
    }
}

/// Runs a batch's items, scattering across the worker pool when one is
/// attached and the batch is worth parallelising, and returns outcomes
/// in request order.
fn run_batch(state: &AppState, items: Vec<BatchItem>) -> Vec<Result<String, Failure>> {
    state.metrics.record_batch();
    let pool = state.fanout.get();
    if items.len() < 2 || pool.is_none() {
        return items
            .iter()
            .map(|item| {
                state.metrics.record_batch_subtask(false);
                run_batch_item(state, item)
            })
            .collect();
    }
    let pool = pool.expect("checked above");
    let job = Arc::new(BatchJob::new(items));
    // Scatter: enqueue contiguous chunks of items, at most
    // MAX_BATCH_SUBTASKS of them, so a thousand-item batch costs tens of
    // queue operations instead of a thousand. A full queue is not an
    // error — whatever fails to scatter simply runs inline below, so a
    // saturated pool degrades to sequential execution instead of
    // deadlocking the worker that is coordinating this batch.
    let chunk = job.len().div_ceil(MAX_BATCH_SUBTASKS).max(1);
    let mut start = 0;
    while start < job.len() {
        let end = (start + chunk).min(job.len());
        // Raise the gauge before the push: a worker may pop (and
        // decrement) the instant the push lands.
        state.metrics.queue_changed(1);
        let subtask = BatchSubtask {
            job: Arc::clone(&job),
            start,
            end,
        };
        if pool.try_push_rotating(Work::Batch(subtask)).is_err() {
            state.metrics.queue_changed(-1);
            break;
        }
        start = end;
    }
    // Gather, stealing: claim and run every item no worker has started
    // yet (including items we queued — a worker popping one later finds
    // the claim taken and drops it). Because the coordinator can always
    // claim its own unstarted work, batch completion never depends on
    // queue capacity, which is what makes the scheme deadlock-free.
    for index in 0..job.len() {
        if job.run_claimed(state, index) {
            state.metrics.record_batch_subtask(false);
        }
    }
    // Items claimed by pool workers may still be in flight; wait for
    // the last store. Every claimed item is actively executing on some
    // thread, so this wait is bounded by solver time, not queue state.
    job.wait()
}

/// A scattered `/v1/partition` batch: the items, one claim flag per
/// item, and the gathered results.
///
/// Claims make work stealing race-free: whoever flips the flag first —
/// a pool worker that popped the subtask, or the coordinator sweeping
/// unstarted items — runs the item exactly once.
#[derive(Debug)]
struct BatchJob {
    items: Vec<BatchItem>,
    claims: Vec<AtomicBool>,
    slots: Mutex<BatchSlots>,
    done: Condvar,
}

/// Runs one prepared batch item: a preparation failure is reported in
/// place; an item whose deadline already expired is dropped without
/// dispatching (counted under `where="batch"`); everything else solves
/// under its effective deadline.
fn run_batch_item(state: &AppState, item: &BatchItem) -> Result<String, Failure> {
    match item {
        Err(failure) => Err(failure.clone()),
        Ok((value, deadline)) => {
            if let Some(d) = deadline {
                if Instant::now() >= *d {
                    state.metrics.record_deadline_drop("batch");
                    return Err(solve_failure(SolveError::DeadlineExceeded));
                }
            }
            partition_one(state, value, *deadline)
        }
    }
}

#[derive(Debug)]
struct BatchSlots {
    results: Vec<Option<Result<String, Failure>>>,
    remaining: usize,
}

impl BatchJob {
    fn new(items: Vec<BatchItem>) -> Self {
        let n = items.len();
        BatchJob {
            items,
            claims: (0..n).map(|_| AtomicBool::new(false)).collect(),
            slots: Mutex::new(BatchSlots {
                results: (0..n).map(|_| None).collect(),
                remaining: n,
            }),
            done: Condvar::new(),
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    /// Claims and runs item `index`; returns `false` (without running)
    /// when another thread already claimed it.
    fn run_claimed(&self, state: &AppState, index: usize) -> bool {
        if self.claims[index].swap(true, Ordering::AcqRel) {
            return false;
        }
        let result = run_batch_item(state, &self.items[index]);
        let mut slots = self.slots.lock().expect("batch slots poisoned");
        slots.results[index] = Some(result);
        slots.remaining -= 1;
        if slots.remaining == 0 {
            self.done.notify_all();
        }
        true
    }

    /// Blocks until every item has stored its result, then returns them
    /// in request order.
    fn wait(&self) -> Vec<Result<String, Failure>> {
        let mut slots = self.slots.lock().expect("batch slots poisoned");
        while slots.remaining > 0 {
            slots = self.done.wait(slots).expect("batch slots poisoned");
        }
        slots
            .results
            .iter_mut()
            .map(|slot| slot.take().expect("all items completed"))
            .collect()
    }
}

/// One scattered chunk of batch items (`start..end`), executed by a
/// pool worker. Claims stay per-item, so any item the coordinator stole
/// first is simply skipped — chunking changes queue traffic, not the
/// execution or ordering guarantees.
#[derive(Debug)]
pub struct BatchSubtask {
    job: Arc<BatchJob>,
    start: usize,
    end: usize,
}

impl BatchSubtask {
    /// Runs every still-unclaimed item in the chunk. Called from the
    /// worker loop in [`crate::server`].
    pub fn run(&self, state: &AppState) {
        for index in self.start..self.end {
            if self.job.run_claimed(state, index) {
                state.metrics.record_batch_subtask(true);
            }
        }
    }
}

/// The registered name the request dispatches to, for log labels —
/// `"-"` when the objective is missing or unknown.
fn dispatched_objective(value: &Value) -> &'static str {
    value
        .get("objective")
        .and_then(Value::as_str)
        .and_then(|name| Registry::shared().get(name))
        .map(|(_, solver)| solver.name())
        .unwrap_or("-")
}

/// Runs `f` under a named stage: the duration lands in the per-stage
/// histogram and (when this thread carries an active trace) as a span.
/// Batch subtasks on sibling workers have no active recorder, so their
/// stage metrics still record while span collection no-ops. Takes the
/// stage's start instant and returns the end instant so adjacent
/// stages chain boundaries (the end of `solve` is the start of
/// `serialize`) instead of paying a clock read per edge.
fn timed_stage_from<R>(
    state: &AppState,
    stage: Stage,
    started: Instant,
    f: impl FnOnce() -> R,
) -> (R, Instant) {
    let result = f();
    let done = Instant::now();
    let elapsed = done.saturating_duration_since(started);
    state.metrics.record_stage(stage, elapsed);
    trace::record(stage, started, elapsed);
    (result, done)
}

/// Handles one partition request object: registry dispatch, then the
/// cache, then the solver — run under a [`Budget`] when the request has
/// a deadline, so a long solve is interrupted mid-loop instead of
/// holding the worker. Returns the rendered (compact) response JSON.
/// Per-objective metrics are recorded here so batch items count too.
fn partition_one(
    state: &AppState,
    value: &Value,
    deadline: Option<Instant>,
) -> Result<String, Failure> {
    let started = Instant::now();
    let registry = Registry::shared();
    let outcome =
        registry
            .dispatch(value)
            .map_err(solve_failure)
            .and_then(|(index, solver, request)| {
                let key = solver.canonical_key(&request);
                let cost = solver.cost_estimate(&request);
                with_cache(state, &key, cost, deadline, || {
                    let budget = match deadline {
                        Some(d) => Budget::with_deadline(d),
                        None => Budget::unlimited(),
                    };
                    let (response, solve_done) =
                        timed_stage_from(state, Stage::Solve, Instant::now(), || {
                            solver
                                .run_budgeted(&request, &budget)
                                .map_err(solve_failure)
                        });
                    let response = response?;
                    let (rendered, _) =
                        timed_stage_from(state, Stage::Serialize, solve_done, || {
                            solver.to_json(&response).to_string()
                        });
                    Ok(rendered)
                })
                .map(|rendered| (index, rendered))
            });
    match outcome {
        Ok((index, rendered)) => {
            state
                .metrics
                .record_objective(index, true, started.elapsed());
            Ok(rendered)
        }
        Err(failure) => {
            // Label the failure when the objective at least resolved;
            // unknown objectives have no series to attribute to.
            if let Some((index, _)) = value
                .get("objective")
                .and_then(Value::as_str)
                .and_then(|name| registry.get(name))
            {
                state
                    .metrics
                    .record_objective(index, false, started.elapsed());
            }
            note_interrupt(state, &failure, started);
            Err(failure)
        }
    }
}

/// Makes a budget interrupt observable: a `cancelled` stage span (the
/// time the doomed solve consumed before noticing) and one tick of
/// `tgp_deadline_drops_total{where="solve"}`.
fn note_interrupt(state: &AppState, failure: &Failure, started: Instant) {
    if failure.is_interrupt() {
        let elapsed = started.elapsed();
        state.metrics.record_stage(Stage::Cancelled, elapsed);
        trace::record(Stage::Cancelled, started, elapsed);
        state.metrics.record_deadline_drop("solve");
    }
}

/// A session-store rejection, carrying the session error's stable code
/// and status (`session_not_found` → 404, `version_conflict` → 409,
/// `session_budget_exceeded` → 413, invalid graph/edit → 422).
fn session_failure(error: SessionError) -> Failure {
    failure(error.status(), error.to_string(), error.code())
}

/// `POST /v1/graphs`: registers a resident graph, returning its id and
/// initial version. Body is `{"graph": <chain or tree object>}`.
fn graphs_register(state: &AppState, body: &[u8]) -> ApiResponse {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err(failure) => return error_response("graphs", &failure),
    };
    let Value::Object(entries) = value else {
        return error_response("graphs", &bad("request body must be a JSON object"));
    };
    let mut graph = None;
    for (key, field) in entries {
        match key.as_str() {
            "graph" => graph = Some(field),
            other => {
                return error_response(
                    "graphs",
                    &invalid_field(other, "not a field of the register request"),
                )
            }
        }
    }
    let Some(graph) = graph else {
        return error_response(
            "graphs",
            &missing_field("graph", "a chain or tree graph object"),
        );
    };
    match state.sessions.register(graph) {
        Ok((id, _version)) => {
            let info = state
                .sessions
                .info(&id)
                .expect("freshly registered graph is resident");
            json_response(200, "graphs", format!("{info}\n"))
        }
        Err(error) => error_response("graphs", &session_failure(error)),
    }
}

/// Routes `/v1/graphs/<id>` and `/v1/graphs/<id>/partition`.
fn graphs_item(
    state: &AppState,
    method: &str,
    path: &str,
    body: &[u8],
    deadline: Option<Instant>,
) -> ApiResponse {
    let rest = path.strip_prefix("/v1/graphs/").expect("routed by prefix");
    if let Some(id) = rest.strip_suffix("/partition") {
        if id.is_empty() || id.contains('/') {
            return simple_error(404, "graphs", "no such endpoint");
        }
        if method != "POST" {
            return simple_error(405, "graphs", "method not allowed");
        }
        return session_partition(state, id, body, deadline);
    }
    let id = rest;
    if id.is_empty() || id.contains('/') {
        return simple_error(404, "graphs", "no such endpoint");
    }
    match method {
        "GET" => match state.sessions.info(id) {
            Ok(info) => json_response(200, "graphs", format!("{info}\n")),
            Err(error) => error_response("graphs", &session_failure(error)),
        },
        "DELETE" => match state.sessions.delete(id) {
            Ok(()) => {
                // The graph is gone; so is the baseline any future
                // delta response could be computed against.
                state
                    .last_solves
                    .lock()
                    .expect("last solves poisoned")
                    .retain(|(graph, _), _| graph != id);
                json_response(
                    200,
                    "graphs",
                    format!("{}\n", json!({ "id": id, "deleted": true })),
                )
            }
            Err(error) => error_response("graphs", &session_failure(error)),
        },
        "PATCH" => graphs_patch(state, id, body),
        _ => simple_error(405, "graphs", "method not allowed"),
    }
}

/// `PATCH /v1/graphs/<id>`: applies one atomic edit batch under an
/// optimistic version check. Body is `{"version": N, "edits": [...]}`.
fn graphs_patch(state: &AppState, id: &str, body: &[u8]) -> ApiResponse {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err(failure) => return error_response("graphs", &failure),
    };
    let failure = 'patch: {
        let Some(entries) = value.as_object() else {
            break 'patch bad("request body must be a JSON object");
        };
        if let Some((key, _)) = entries.iter().find(|(k, _)| k != "version" && k != "edits") {
            break 'patch invalid_field(key, "not a field of the edit request");
        }
        let Some(version) = value.get("version").and_then(Value::as_u64) else {
            break 'patch missing_field("version", "the graph version the batch applies to");
        };
        let Some(edits_value) = value.get("edits") else {
            break 'patch missing_field("edits", "an array of edit objects");
        };
        let edits = match Edit::batch_from_json(edits_value) {
            Ok(edits) => edits,
            Err(error) => break 'patch session_failure(error),
        };
        match state.sessions.apply(id, version, &edits) {
            Ok(new_version) => {
                return json_response(
                    200,
                    "graphs",
                    format!(
                        "{}\n",
                        json!({
                            "id": id,
                            "version": new_version,
                            "applied": edits.len() as u64,
                        })
                    ),
                )
            }
            Err(error) => break 'patch session_failure(error),
        }
    };
    error_response("graphs", &failure)
}

/// `POST /v1/graphs/<id>/partition`: solves an objective against the
/// resident graph, warm-starting from the session's previous solve when
/// the store's slack window is still valid. Responses are byte-identical
/// to the stateless endpoint; only the `x-tgp-solve` header says which
/// path ran.
fn session_partition(
    state: &AppState,
    id: &str,
    body: &[u8],
    deadline: Option<Instant>,
) -> ApiResponse {
    let started = Instant::now();
    let mut value = match parse_body_budgeted(state, body, deadline) {
        Ok(v) => v,
        Err(failure) => return error_response("graphs", &failure),
    };
    let objective = dispatched_objective(&value);
    let objective_index = value
        .get("objective")
        .and_then(Value::as_str)
        .and_then(|name| Registry::shared().get(name))
        .map(|(index, _)| index);
    let mut response = match session_partition_one(state, id, &mut value, deadline) {
        Ok(solved) => {
            if let Some(index) = objective_index {
                state
                    .metrics
                    .record_objective(index, true, started.elapsed());
            }
            state.sessions.record_solve(solved.warm);
            let mut response = json_response(200, "graphs", solved.body);
            response.headers.push((
                "x-tgp-solve",
                if solved.warm { "warm" } else { "cold" }.to_string(),
            ));
            if let Some(mode) = solved.response_mode {
                response.headers.push(("x-tgp-response", mode.to_string()));
            }
            response
        }
        Err(failure) => {
            if let Some(index) = objective_index {
                state
                    .metrics
                    .record_objective(index, false, started.elapsed());
            }
            note_interrupt(state, &failure, started);
            error_response("graphs", &failure)
        }
    };
    response.objective = objective;
    response
}

/// Outcome of one session solve: the response body (full, or just the
/// changed fields), whether the warm path ran, and — when the client
/// asked via `"response"` — which body shape was actually returned.
struct SessionSolve {
    body: String,
    warm: bool,
    response_mode: Option<&'static str>,
}

/// The session solve: looks up the resident graph, splices it into the
/// request for registry dispatch (moved, not cloned — a 100k-node graph
/// costs two pointer swaps), and runs warm when the store still has a
/// certified window for this `(objective, params)` key.
///
/// Session solves bypass the [`ResultCache`] deliberately: the cache
/// would mask the warm/cold distinction, and `loadgen --strict`'s cold
/// verification depends on cold meaning "actually recomputed".
fn session_partition_one(
    state: &AppState,
    id: &str,
    value: &mut Value,
    deadline: Option<Instant>,
) -> Result<SessionSolve, Failure> {
    let session_started = Instant::now();
    if value.get("graph").is_some() {
        return Err(invalid_field(
            "graph",
            "session partitions use the resident graph; remove the \"graph\" field",
        ));
    }
    let Value::Object(_) = value else {
        return Err(bad("request body must be a JSON object"));
    };
    // The `"response"` field is service-level ("full" | "delta"), not a
    // solver parameter: extract and remove it before dispatch.
    let response_mode = take_response_mode(value)?;
    let arc = state.sessions.resident(id).map_err(session_failure)?;
    let mut resident = arc.lock().expect("resident graph poisoned");
    if let Some(result) = session_flat_solve(
        state,
        value,
        &mut resident,
        id,
        response_mode,
        deadline,
        session_started,
    ) {
        return result;
    }
    // Move the resident graph into the request object, dispatch, move it
    // back. No early return while the graph is out.
    let graph = std::mem::replace(&mut resident.graph, Value::Null);
    if let Value::Object(entries) = value {
        entries.push(("graph".to_string(), graph));
    }
    let dispatched = Registry::shared().dispatch(value).map_err(solve_failure);
    let graph = match value {
        Value::Object(entries) => entries.pop().map(|(_, graph)| graph).unwrap_or(Value::Null),
        _ => Value::Null,
    };
    resident.graph = graph;
    let (_, solver, request) = dispatched?;

    // The warm-memory key: objective + params, *without* the graph —
    // it must survive edits to keep pointing at the previous solve.
    let mut builder = KeyBuilder::default();
    builder.write_str(solver.name());
    request.params.write_key(&mut builder);
    let key = builder.finish();
    let window = resident.warm_window(&key);
    let session_done = Instant::now();
    let session_elapsed = session_done.saturating_duration_since(session_started);
    state.metrics.record_stage(Stage::Session, session_elapsed);
    trace::record(Stage::Session, session_started, session_elapsed);

    let ((outcome, warm), solve_done) = timed_stage_from(state, Stage::Solve, session_done, || {
        if let Some((lo, hi)) = window {
            if let Some(result) = solver.run_warm(&request, lo, hi) {
                return (result.map_err(solve_failure), true);
            }
        }
        let budget = match deadline {
            Some(d) => Budget::with_deadline(d),
            None => Budget::unlimited(),
        };
        (
            solver
                .run_budgeted(&request, &budget)
                .map_err(solve_failure),
            false,
        )
    });
    let response = outcome?;
    let ((rendered_value, rendered, bottleneck), _) =
        timed_stage_from(state, Stage::Serialize, solve_done, || {
            let rendered_value = solver.to_json(&response);
            let bottleneck = rendered_value["bottleneck"].as_u64();
            let rendered = rendered_value.to_string();
            (rendered_value, rendered, bottleneck)
        });
    if let Some(bottleneck) = bottleneck {
        resident.note_solve(&key, bottleneck);
    }
    // Remember the full response (still under the resident lock, so
    // per-graph solves serialize with their baselines) and answer delta
    // requests with only the fields that changed since the last solve.
    let previous = state
        .last_solves
        .lock()
        .expect("last solves poisoned")
        .insert((id.to_string(), key.clone()), rendered.clone());
    let (body, response_mode) = match response_mode {
        Some("delta") => match previous {
            Some(previous) => (
                format!("{}\n", delta_changed(&previous, &rendered_value)),
                Some("delta"),
            ),
            // No baseline to diff against: fall back to the full body.
            None => (format!("{rendered}\n"), Some("full")),
        },
        Some(_) => (format!("{rendered}\n"), Some("full")),
        None => (format!("{rendered}\n"), None),
    };
    Ok(SessionSolve {
        body,
        warm,
        response_mode,
    })
}

/// The out-of-core session solve: a resident graph at or past
/// `--graph-spill-bytes` would roughly double its footprint if the
/// solve materialized another pointer graph, so flat-capable requests
/// (a flat objective plus just a `bound`) re-ingest the resident JSON
/// into *disk-backed* flat arrays and solve there, keeping the solve's
/// own resident cost near zero. Responses, warm windows and delta
/// bookkeeping are byte-identical to the registry path's.
///
/// Returns `None` when the graph is below the threshold or the request
/// is not flat-eligible (extra params, non-flat objective, malformed
/// bound…) — the caller then dispatches through the registry, which
/// owns all error rendering.
// The arguments mirror the bookkeeping the legacy path does inline;
// bundling them would just restate `session_partition_one`'s locals.
#[allow(clippy::too_many_arguments)]
fn session_flat_solve(
    state: &AppState,
    value: &Value,
    resident: &mut tgp_session::Resident,
    id: &str,
    response_mode: Option<&'static str>,
    deadline: Option<Instant>,
    session_started: Instant,
) -> Option<Result<SessionSolve, Failure>> {
    if resident.resident_bytes() < state.graph_spill_bytes {
        return None;
    }
    let Value::Object(entries) = value else {
        return None;
    };
    // Exactly {"objective", "bound"}: anything else (extra params,
    // wrong types) must flow through the registry for canonical errors.
    if entries.len() != 2 {
        return None;
    }
    let objective = value.get("objective")?.as_str()?;
    FlatObjective::from_name(objective)?;
    let bound = value.get("bound")?.as_u64()?;
    // Compose the flat-ingest body around the resident graph's JSON.
    // The rendered string is transient (dropped after the ingest scan);
    // the solve itself runs over the disk-backed arrays.
    let body = format!(
        "{{\"objective\":\"{objective}\",\"bound\":{bound},\"graph\":{}}}",
        resident.graph
    );
    let backing = IngestBacking::disk(
        state
            .graph_spill_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir),
    );
    let budget = match deadline {
        Some(d) => Budget::with_deadline(d),
        None => Budget::unlimited(),
    };
    let session_done = Instant::now();
    let session_elapsed = session_done.saturating_duration_since(session_started);
    state.metrics.record_stage(Stage::Session, session_elapsed);
    trace::record(Stage::Session, session_started, session_elapsed);
    let (outcome, ingest_done) = timed_stage_from(state, Stage::Ingest, session_done, || {
        ingest_flat(body.as_bytes(), &backing, &budget)
    });
    let request = match outcome {
        Ok(Some(request)) => request,
        Ok(None) => return None,
        Err(error) => {
            if matches!(error, SolveError::DeadlineExceeded) {
                state.metrics.record_deadline_drop("parse");
            }
            return Some(Err(solve_failure(error)));
        }
    };
    state
        .metrics
        .record_store_backing(request.graph.backing_kind().as_str());
    let key = request.warm_key();
    let window = resident.warm_window(&key);
    let ((outcome, warm), solve_done) = timed_stage_from(state, Stage::Solve, ingest_done, || {
        if let Some((lo, hi)) = window {
            if let Some(result) = request.run_warm(lo, hi) {
                return (result.map_err(solve_failure), true);
            }
        }
        (request.run_budgeted(&budget).map_err(solve_failure), false)
    });
    let response = match outcome {
        Ok(response) => response,
        Err(failure) => return Some(Err(failure)),
    };
    let ((rendered_value, rendered, bottleneck), _) =
        timed_stage_from(state, Stage::Serialize, solve_done, || {
            // Identical to the legacy `solver.to_json(&response)`
            // rendering: the default `to_json` is the response value.
            let rendered_value = response.value;
            let bottleneck = rendered_value["bottleneck"].as_u64();
            let rendered = rendered_value.to_string();
            (rendered_value, rendered, bottleneck)
        });
    if let Some(bottleneck) = bottleneck {
        resident.note_solve(&key, bottleneck);
    }
    let previous = state
        .last_solves
        .lock()
        .expect("last solves poisoned")
        .insert((id.to_string(), key), rendered.clone());
    let (body, response_mode) = match response_mode {
        Some("delta") => match previous {
            Some(previous) => (
                format!("{}\n", delta_changed(&previous, &rendered_value)),
                Some("delta"),
            ),
            None => (format!("{rendered}\n"), Some("full")),
        },
        Some(_) => (format!("{rendered}\n"), Some("full")),
        None => (format!("{rendered}\n"), None),
    };
    Some(Ok(SessionSolve {
        body,
        warm,
        response_mode,
    }))
}

/// Removes and validates the session solve's `"response"` field.
fn take_response_mode(value: &mut Value) -> Result<Option<&'static str>, Failure> {
    let Value::Object(entries) = value else {
        return Ok(None);
    };
    let Some(pos) = entries.iter().position(|(k, _)| k == "response") else {
        return Ok(None);
    };
    let (_, v) = entries.remove(pos);
    match v.as_str() {
        Some("full") => Ok(Some("full")),
        Some("delta") => Ok(Some("delta")),
        _ => Err(invalid_field("response", "must be \"full\" or \"delta\"")),
    }
}

/// The delta body: the fields of `current` whose rendered value differs
/// from the stored `previous` full response, in response order.
/// Reconstructing the full body = taking `previous` and substituting
/// each changed field's value; session_e2e pins that round trip
/// byte-identical.
fn delta_changed(previous: &str, current: &Value) -> Value {
    let prev = Value::parse(previous).expect("stored solve is rendered JSON");
    let mut changed: Vec<(String, Value)> = Vec::new();
    if let Value::Object(entries) = current {
        for (k, v) in entries {
            let same = prev
                .get(k)
                .map(|p| p.to_string() == v.to_string())
                .unwrap_or(false);
            if !same {
                changed.push((k.clone(), v.clone()));
            }
        }
    }
    Value::Object(vec![("changed".to_string(), Value::Object(changed))])
}

fn simulate_endpoint(state: &AppState, body: &[u8], deadline: Option<Instant>) -> ApiResponse {
    let started = Instant::now();
    let value = match parse_body_budgeted(state, body, deadline) {
        Ok(v) => v,
        Err(failure) => return error_response("simulate", &failure),
    };
    match simulate_one(state, &value, deadline) {
        Ok(rendered) => json_response(200, "simulate", format!("{rendered}\n")),
        Err(failure) => {
            note_interrupt(state, &failure, started);
            error_response("simulate", &failure)
        }
    }
}

/// 422 constructors matching the registry's error codes, for the
/// simulate endpoint (which takes no objective and so bypasses the
/// registry but follows the same error contract).
fn missing_field(field: &'static str, expected: &'static str) -> Failure {
    solve_failure(SolveError::MissingField { field, expected })
}

fn invalid_field(field: &str, message: impl Into<String>) -> Failure {
    solve_failure(SolveError::InvalidField {
        field: field.into(),
        message: message.into(),
    })
}

fn too_expensive(message: String) -> Failure {
    failure(422, message, "too_expensive")
}

fn infeasible(error: impl std::fmt::Display) -> Failure {
    solve_failure(SolveError::infeasible(error))
}

fn simulate_one(
    state: &AppState,
    value: &Value,
    deadline: Option<Instant>,
) -> Result<String, Failure> {
    let bound = value["bound"]
        .as_u64()
        .ok_or_else(|| missing_field("bound", "a non-negative integer"))?;
    let items = value["items"]
        .as_u64()
        .ok_or_else(|| missing_field("items", "a non-negative integer"))?;
    if items > MAX_SIMULATE_ITEMS {
        return Err(too_expensive(format!(
            "\"items\" is {items}, which exceeds the limit of {MAX_SIMULATE_ITEMS}"
        )));
    }
    let items = items as usize;
    let graph = value
        .get("graph")
        .ok_or_else(|| missing_field("graph", "a chain graph object"))?;
    let chain = PathGraph::from_json(graph)
        .map_err(|e| invalid_field("graph", format!("not a valid chain: {e}")))?;
    let processors_override = match value.get("processors") {
        None => None,
        Some(v) => {
            let p = v
                .as_u64()
                .ok_or_else(|| invalid_field("processors", "must be a non-negative integer"))?;
            if p > MAX_SIMULATE_PROCESSORS {
                return Err(too_expensive(format!(
                    "\"processors\" is {p}, which exceeds the limit of {MAX_SIMULATE_PROCESSORS}"
                )));
            }
            Some(p as usize)
        }
    };
    let interconnect_name = match value.get("interconnect") {
        None => "bus",
        Some(v) => v
            .as_str()
            .ok_or_else(|| invalid_field("interconnect", "must be \"bus\" or \"crossbar\""))?,
    };
    let interconnect = match interconnect_name {
        "bus" => Interconnect::Bus,
        "crossbar" => Interconnect::Crossbar,
        other => {
            return Err(invalid_field(
                "interconnect",
                format!("must be \"bus\" or \"crossbar\", got {other:?}"),
            ))
        }
    };

    let mut builder = KeyBuilder::default();
    builder.write(b"simulate/");
    builder.write(interconnect_name.as_bytes());
    builder.write_u64(bound);
    builder.write_u64(items as u64);
    builder.write_u64(processors_override.map(|p| p as u64 + 1).unwrap_or(0));
    builder.write_u64(chain.len() as u64);
    for w in chain.node_weights() {
        builder.write_u64(w.get());
    }
    for w in chain.edge_weights() {
        builder.write_u64(w.get());
    }
    let key = builder.finish();

    // One simulation event per item per stage, roughly: the admission
    // guard should treat long simulations as expensive to recompute.
    let cost = (items as u64).saturating_mul(chain.len() as u64);
    with_cache(state, &key, cost, deadline, || {
        let budget = match deadline {
            Some(d) => Budget::with_deadline(d),
            None => Budget::unlimited(),
        };
        let (solved, solve_done) = timed_stage_from(state, Stage::Solve, Instant::now(), || {
            let part = partition_chain_budgeted(&chain, Weight::new(bound), &budget)
                .map_err(|e| solve_failure(SolveError::from_partition(e)))?;
            let processors = processors_override.unwrap_or(part.processors);
            let machine = Machine::new(processors, 1, 1, 0, interconnect).map_err(infeasible)?;
            let spec = PipelineSpec::from_partition(&chain, &part.cut).map_err(infeasible)?;
            let report = simulate_pipeline(&spec, &machine, items).map_err(infeasible)?;
            Ok::<_, Failure>((processors, report))
        });
        let (processors, report) = solved?;
        let (rendered, _) = timed_stage_from(state, Stage::Serialize, solve_done, || {
            json!({
                "bound": bound,
                "processors": processors,
                "items": items,
                "makespan": report.makespan,
                "throughput": report.throughput(),
                "mean_utilization": report.mean_utilization(),
                "interconnect_utilization": report.interconnect_utilization(),
                "total_traffic": report.total_traffic,
            })
            .to_string()
        });
        Ok(rendered)
    })
}

/// Cache-through: serve a rendered response from the cache or compute,
/// render and remember it. Only successes are cached — a failure (e.g.
/// infeasible bound) is cheap to recompute and should not occupy space.
/// `cost` is the solver's work estimate, used twice: by the cache's
/// admission guard to decide whether a large response is worth keeping,
/// and by [`AppState::shed_verdict`] to refuse expensive recomputation
/// while the worker queue is nearly full. The shed check sits *after*
/// the cache probe on purpose: a hit costs nothing to serve, so cached
/// requests are never shed no matter how expensive their solve was.
fn with_cache(
    state: &AppState,
    key: &[u8],
    cost: u64,
    deadline: Option<Instant>,
    compute: impl FnOnce() -> Result<String, Failure>,
) -> Result<String, Failure> {
    // Timed inline (not via `timed_stage_from`) so the probe's end
    // instant also stamps the hit/miss journal event — one clock read
    // saved on every request.
    let probe_started = Instant::now();
    let hit = state.cache.get(key);
    let probe_done = Instant::now();
    let probe = probe_done.saturating_duration_since(probe_started);
    state.metrics.record_stage(Stage::Cache, probe);
    trace::record(Stage::Cache, probe_started, probe);
    if let Some(hit) = hit {
        state.metrics.record_cache(true);
        if state.debug_endpoints {
            let trace_id = trace::current_id().unwrap_or(TraceId::NONE).as_u64();
            state
                .journal
                .append_at(probe_done, EventKind::CacheHit, trace_id, cost, 0);
        }
        return Ok(hit);
    }
    if let Some(failure) = state.shed_verdict(cost, deadline) {
        // Shed before counting a miss: the request neither consulted
        // compute nor occupied the cache, so it is not cache traffic.
        return Err(failure);
    }
    state.metrics.record_cache(false);
    if state.debug_endpoints {
        let trace_id = trace::current_id().unwrap_or(TraceId::NONE).as_u64();
        state
            .journal
            .append_at(probe_done, EventKind::CacheMiss, trace_id, cost, 0);
    }
    let rendered = compute()?;
    state.cache.insert(key, rendered.clone(), cost);
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BoundedQueue;
    use tgp_core::pipeline::partition_chain;
    use tgp_solvers::GraphKind;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec().into(),
            keep_alive: true,
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new().into(),
            keep_alive: true,
        }
    }

    const CHAIN: &str = r#"{"node_weights": [2, 3, 5, 7], "edge_weights": [10, 1, 10]}"#;
    const TREE: &str = r#"{"node_weights": [1, 2, 3, 4],
        "edges": [{"a": 0, "b": 1, "weight": 10},
                  {"a": 0, "b": 2, "weight": 20},
                  {"a": 2, "b": 3, "weight": 30}]}"#;

    /// A runnable request for any registered objective, used to prove
    /// the endpoint really exposes the whole registry.
    fn golden_body(objective: &str) -> String {
        let (_, solver) = Registry::shared().get(objective).expect("registered");
        let graph = match solver.graph_kind() {
            GraphKind::Chain => CHAIN,
            GraphKind::Tree | GraphKind::Process => TREE,
        };
        let params = match objective {
            "coc" | "bokhari" | "hansen-lih" => r#""processors": 2"#,
            "hetero" => r#""speeds": [2, 1]"#,
            "host-satellite" => r#""satellites": 2"#,
            _ => r#""bound": 10"#,
        };
        format!(r#"{{"objective": "{objective}", {params}, "graph": {graph}}}"#)
    }

    #[test]
    fn healthz_is_ok() {
        let state = AppState::new(CacheConfig::default());
        let r = handle(&state, &get("/healthz"));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("ok"));
    }

    #[test]
    fn every_registered_objective_is_served() {
        let state = AppState::new(CacheConfig::default());
        for solver in Registry::shared().iter() {
            let body = golden_body(solver.name());
            let r = handle(&state, &post("/v1/partition", &body));
            assert_eq!(r.status, 200, "{}: {}", solver.name(), r.body);
            let v = Value::parse(&r.body).unwrap();
            assert_eq!(v["objective"].as_str(), Some(solver.name()), "{}", r.body);
            assert_eq!(r.objective, solver.name());
        }
        // Each objective produced one request + one miss in the metrics.
        let text = state.metrics.render();
        for solver in Registry::shared().iter() {
            assert!(
                text.contains(&format!(
                    "tgp_objective_requests_total{{objective=\"{}\"}} 1",
                    solver.name()
                )),
                "missing metrics for {}",
                solver.name()
            );
        }
    }

    #[test]
    fn bandwidth_partition_matches_direct_solver() {
        let state = AppState::new(CacheConfig::default());
        let body = format!(r#"{{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}}"#);
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();

        let chain = PathGraph::from_json(&Value::parse(CHAIN).unwrap()).unwrap();
        let direct = partition_chain(&chain, Weight::new(10)).unwrap();
        assert_eq!(
            v["processors"].as_u64().unwrap() as usize,
            direct.processors
        );
        assert_eq!(v["bandwidth"].as_u64().unwrap(), direct.bandwidth.get());
        let cut: Vec<u64> = v["cut"]
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e.as_u64().unwrap())
            .collect();
        let direct_cut: Vec<u64> = direct.cut.iter().map(|e| e.index() as u64).collect();
        assert_eq!(cut, direct_cut);
    }

    #[test]
    fn tree_objectives_work() {
        let state = AppState::new(CacheConfig::default());
        for (objective, expect_key) in [("bottleneck", "components"), ("procmin", "processors")] {
            let body = format!(r#"{{"objective": "{objective}", "bound": 10, "graph": {TREE}}}"#);
            let r = handle(&state, &post("/v1/partition", &body));
            assert_eq!(r.status, 200, "{objective}: {}", r.body);
            let v = Value::parse(&r.body).unwrap();
            assert!(v[expect_key].as_u64().is_some(), "{objective}: {}", r.body);
        }
    }

    #[test]
    fn equivalent_requests_hit_the_cache() {
        let state = AppState::new(CacheConfig::default());
        let a = format!(r#"{{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}}"#);
        // Same content, different formatting and field order.
        let b = format!(r#"{{ "graph": {CHAIN},   "bound": 10, "objective": "bandwidth" }}"#);
        let r1 = handle(&state, &post("/v1/partition", &a));
        let r2 = handle(&state, &post("/v1/partition", &b));
        assert_eq!(r1.body, r2.body);
        assert_eq!(state.metrics.cache_hits(), 1);
    }

    #[test]
    fn batch_requests_partition_independently() {
        let state = AppState::new(CacheConfig::default());
        let body = format!(
            r#"{{"requests": [
                {{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}},
                {{"objective": "nonsense", "bound": 10, "graph": {CHAIN}}},
                {{"objective": "procmin", "bound": 10, "graph": {TREE}}}
            ]}}"#
        );
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(r.objective, "batch");
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["completed"].as_u64(), Some(2), "{}", r.body);
        assert_eq!(v["failed"].as_u64(), Some(1), "{}", r.body);
        let results = v["results"].as_array().unwrap();
        assert_eq!(results.len(), 3);
        // v2: every item is tagged {index, status, body}, in order.
        for (i, item) in results.iter().enumerate() {
            assert_eq!(item["index"].as_u64(), Some(i as u64));
        }
        assert_eq!(results[0]["status"].as_u64(), Some(200));
        assert!(results[0]["body"]["objective"].as_str().is_some());
        assert_eq!(results[1]["status"].as_u64(), Some(422));
        assert_eq!(
            results[1]["body"]["code"].as_str(),
            Some("unknown_objective")
        );
        assert_eq!(results[2]["status"].as_u64(), Some(200));
        assert!(results[2]["body"]["processors"].as_u64().is_some());
    }

    #[test]
    fn batch_compat_flag_restores_v1_shape() {
        let state = AppState::new(CacheConfig::default());
        let body = format!(
            r#"{{"compat": true, "requests": [
                {{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}},
                {{"objective": "nonsense", "bound": 10, "graph": {CHAIN}}}
            ]}}"#
        );
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert!(v.get("completed").is_none(), "v1 shape has no counts");
        let results = v["results"].as_array().unwrap();
        assert!(results[0]["objective"].as_str().is_some());
        assert_eq!(results[1]["code"].as_str(), Some("unknown_objective"));

        // compat must be a boolean, not merely truthy.
        let bad_flag = body.replace("\"compat\": true", "\"compat\": 1");
        let r = handle(&state, &post("/v1/partition", &bad_flag));
        assert_eq!(r.status, 400, "{}", r.body);
    }

    #[test]
    fn batch_without_pool_runs_inline_and_counts_subtasks() {
        let state = AppState::new(CacheConfig::default());
        let body = format!(
            r#"{{"requests": [
                {{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}},
                {{"objective": "nicol", "bound": 10, "graph": {CHAIN}}}
            ]}}"#
        );
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let text = state.metrics.render();
        assert!(text.contains("tgp_batch_requests_total 1"), "{text}");
        assert!(
            text.contains("tgp_batch_subtasks_total{path=\"inline\"} 2"),
            "no pool attached → both items inline: {text}"
        );
    }

    #[test]
    fn batch_scatters_across_an_attached_pool() {
        use std::sync::Arc;
        let state = Arc::new(AppState::new(CacheConfig::default()));
        let pool = Arc::new(BoundedQueue::<Work>::new(64));
        state.attach_pool(Arc::new(QueueSet::single(Arc::clone(&pool))));
        // Two pool "workers" draining subtasks, as the server would.
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    while let Some(work) = pool.pop() {
                        state.metrics.queue_changed(-1);
                        if let Work::Batch(subtask) = work {
                            subtask.run(&state);
                        }
                    }
                })
            })
            .collect();

        let items: Vec<String> = (1..=32)
            .map(|k| {
                format!(
                    r#"{{"objective": "bandwidth", "bound": {}, "graph": {CHAIN}}}"#,
                    k + 9
                )
            })
            .collect();
        let body = format!(r#"{{"requests": [{}]}}"#, items.join(","));
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["completed"].as_u64(), Some(32), "{}", r.body);
        let results = v["results"].as_array().unwrap();
        // Results arrive in request order with matching bounds.
        for (i, item) in results.iter().enumerate() {
            assert_eq!(item["index"].as_u64(), Some(i as u64));
            assert_eq!(item["body"]["bound"].as_u64(), Some(i as u64 + 10));
        }
        pool.close();
        for w in workers {
            w.join().unwrap();
        }
        // All 32 ran exactly once, split between pool and inline paths.
        let text = state.metrics.render();
        let count = |path: &str| -> u64 {
            let needle = format!("tgp_batch_subtasks_total{{path=\"{path}\"}} ");
            text.lines()
                .find_map(|l| l.strip_prefix(&needle))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        assert_eq!(count("pool") + count("inline"), 32, "{text}");
    }

    #[test]
    fn large_batches_scatter_in_bounded_chunks() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let state = Arc::new(AppState::new(CacheConfig::default()));
        let pool = Arc::new(BoundedQueue::<Work>::new(256));
        state.attach_pool(Arc::new(QueueSet::single(Arc::clone(&pool))));
        let popped_subtasks = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let state = Arc::clone(&state);
                let popped = Arc::clone(&popped_subtasks);
                std::thread::spawn(move || {
                    while let Some(work) = pool.pop() {
                        state.metrics.queue_changed(-1);
                        if let Work::Batch(subtask) = work {
                            popped.fetch_add(1, Ordering::Relaxed);
                            subtask.run(&state);
                        }
                    }
                })
            })
            .collect();

        // 130 items > MAX_BATCH_SUBTASKS: must scatter as chunks.
        let items: Vec<String> = (0..130)
            .map(|k| {
                format!(
                    r#"{{"objective": "bandwidth", "bound": {}, "graph": {CHAIN}}}"#,
                    k + 10
                )
            })
            .collect();
        let body = format!(r#"{{"requests": [{}]}}"#, items.join(","));
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["completed"].as_u64(), Some(130), "{}", r.body);
        // Order is preserved item-by-item even though scatter is chunked.
        for (i, item) in v["results"].as_array().unwrap().iter().enumerate() {
            assert_eq!(item["index"].as_u64(), Some(i as u64));
            assert_eq!(item["body"]["bound"].as_u64(), Some(i as u64 + 10));
        }
        pool.close();
        for w in workers {
            w.join().unwrap();
        }
        // The queue saw at most MAX_BATCH_SUBTASKS subtasks for 130
        // items — the whole point of chunking.
        assert!(
            popped_subtasks.load(Ordering::Relaxed) <= MAX_BATCH_SUBTASKS,
            "queue traffic was not chunked: {} subtasks popped",
            popped_subtasks.load(Ordering::Relaxed)
        );
        // Every item ran exactly once, wherever it ran.
        let text = state.metrics.render();
        let count = |path: &str| -> u64 {
            let needle = format!("tgp_batch_subtasks_total{{path=\"{path}\"}} ");
            text.lines()
                .find_map(|l| l.strip_prefix(&needle))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        assert_eq!(count("pool") + count("inline"), 130, "{text}");
    }

    #[test]
    fn expensive_requests_shed_when_queue_nearly_full() {
        use std::sync::Arc;
        let state = Arc::new(AppState::new(CacheConfig::default()).with_shed_cost(Some(0)));
        let pool = Arc::new(BoundedQueue::<Work>::new(4));
        state.attach_pool(Arc::new(QueueSet::single(Arc::clone(&pool))));
        let body = format!(r#"{{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}}"#);

        // Queue below 3/4 capacity: nothing is shed.
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 200, "{}", r.body);

        // Fill the queue to 3/4 with inert subtasks nobody drains; now a
        // cache-missing request above the limit is refused.
        let inert = Arc::new(BatchJob::new(Vec::new()));
        for _ in 0..3 {
            pool.try_push(Work::Batch(BatchSubtask {
                job: Arc::clone(&inert),
                start: 0,
                end: 0,
            }))
            .unwrap();
        }
        let other = format!(r#"{{"objective": "bandwidth", "bound": 11, "graph": {CHAIN}}}"#);
        let r = handle(&state, &post("/v1/partition", &other));
        assert_eq!(r.status, 503, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["code"].as_str(), Some("shed_expensive"), "{}", r.body);
        assert!(
            state.metrics.render().contains("tgp_shed_by_cost_total 1"),
            "shed counter must move"
        );

        // The request served before the pressure is cached — hits are
        // never shed, even at full occupancy.
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(
            r.status, 200,
            "cache hits bypass the shed guard: {}",
            r.body
        );

        // Pressure released: the previously shed request now computes.
        for _ in 0..3 {
            let _ = pool.pop();
        }
        let r = handle(&state, &post("/v1/partition", &other));
        assert_eq!(r.status, 200, "{}", r.body);
    }

    #[test]
    fn shedding_is_off_without_a_configured_limit() {
        use std::sync::Arc;
        let state = Arc::new(AppState::new(CacheConfig::default()));
        let pool = Arc::new(BoundedQueue::<Work>::new(1));
        state.attach_pool(Arc::new(QueueSet::single(Arc::clone(&pool))));
        let inert = Arc::new(BatchJob::new(Vec::new()));
        pool.try_push(Work::Batch(BatchSubtask {
            job: inert,
            start: 0,
            end: 0,
        }))
        .unwrap();
        let body = format!(r#"{{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}}"#);
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(
            r.status, 200,
            "no limit configured → never shed: {}",
            r.body
        );
    }

    #[test]
    fn batch_survives_a_saturated_pool_with_no_workers() {
        use std::sync::Arc;
        // A pool nobody drains, with capacity for only one subtask:
        // the coordinator must steal everything back and still answer.
        let state = Arc::new(AppState::new(CacheConfig::default()));
        let pool = Arc::new(BoundedQueue::<Work>::new(1));
        state.attach_pool(Arc::new(QueueSet::single(Arc::clone(&pool))));
        let body = format!(
            r#"{{"requests": [
                {{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}},
                {{"objective": "bandwidth", "bound": 11, "graph": {CHAIN}}},
                {{"objective": "bandwidth", "bound": 12, "graph": {CHAIN}}}
            ]}}"#
        );
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["completed"].as_u64(), Some(3), "{}", r.body);
    }

    #[test]
    fn non_json_bodies_are_400() {
        let state = AppState::new(CacheConfig::default());
        for bad_body in ["", "{", "\"just a string\"x"] {
            let r = handle(&state, &post("/v1/partition", bad_body));
            assert_eq!(r.status, 400, "body {bad_body:?} gave {}", r.body);
            assert_eq!(
                envelope::parse_envelope(r.body.as_bytes()).unwrap(),
                "bad_request"
            );
        }
    }

    #[test]
    fn semantic_rejections_are_422_with_stable_codes() {
        let state = AppState::new(CacheConfig::default());
        for (body, code) in [
            ("[]".to_string(), "missing_field"),
            ("null".to_string(), "missing_field"),
            (r#"{"objective": "bandwidth"}"#.to_string(), "missing_field"),
            (r#"{"objective": 7, "bound": 10, "graph": {}}"#.to_string(), "missing_field"),
            (
                r#"{"objective": "frobnicate", "bound": 10, "graph": {}}"#.to_string(),
                "unknown_objective",
            ),
            (
                format!(r#"{{"objective": "bandwidth", "bound": -3, "graph": {CHAIN}}}"#),
                "missing_field",
            ),
            (
                r#"{"objective": "bandwidth", "bound": 10, "graph": {"node_weights": [1], "edge_weights": [1, 2]}}"#.to_string(),
                "wrong_graph_kind",
            ),
            (
                // `bottleneck` is a tree objective; a chain graph body
                // lacks the "edges" field.
                format!(r#"{{"objective": "bottleneck", "bound": 10, "graph": {CHAIN}}}"#),
                "wrong_graph_kind",
            ),
            (
                // Undeclared field: likely a typo, reject loudly.
                format!(r#"{{"objective": "bandwidth", "buond": 10, "bound": 10, "graph": {CHAIN}}}"#),
                "unknown_field",
            ),
        ] {
            let r = handle(&state, &post("/v1/partition", &body));
            assert_eq!(r.status, 422, "body {body} gave {}", r.body);
            let v = Value::parse(&r.body).unwrap();
            assert_eq!(v["code"].as_str(), Some(code), "body {body} gave {}", r.body);
        }
    }

    #[test]
    fn infeasible_bound_is_422() {
        let state = AppState::new(CacheConfig::default());
        let body = format!(r#"{{"objective": "bandwidth", "bound": 0, "graph": {CHAIN}}}"#);
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 422, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["code"].as_str(), Some("infeasible"));
        // The failure is attributed to the objective in /metrics.
        assert!(state
            .metrics
            .render()
            .contains("tgp_objective_errors_total{objective=\"bandwidth\"} 1"));
    }

    #[test]
    fn simulate_reports_throughput() {
        let state = AppState::new(CacheConfig::default());
        let body = format!(r#"{{"bound": 10, "items": 5, "graph": {CHAIN}}}"#);
        let r = handle(&state, &post("/v1/simulate", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert!(v["makespan"].as_u64().unwrap() > 0);
        assert!(v["throughput"].as_f64().unwrap() > 0.0);
        // Identical request → cache hit.
        let _ = handle(&state, &post("/v1/simulate", &body));
        assert_eq!(state.metrics.cache_hits(), 1);
    }

    #[test]
    fn simulate_rejects_resource_exhausting_scalars() {
        let state = AppState::new(CacheConfig::default());
        // One event is scheduled per item and per-processor state is
        // allocated up front, so absurd scalars must be refused before
        // any work or allocation happens.
        for body in [
            format!(r#"{{"bound": 10, "items": 10000000000, "graph": {CHAIN}}}"#),
            format!(
                r#"{{"bound": 10, "items": 5, "processors": 1000000000000000000, "graph": {CHAIN}}}"#
            ),
            format!(
                r#"{{"bound": 10, "items": {}, "graph": {CHAIN}}}"#,
                MAX_SIMULATE_ITEMS + 1
            ),
            format!(
                r#"{{"bound": 10, "items": 5, "processors": {}, "graph": {CHAIN}}}"#,
                MAX_SIMULATE_PROCESSORS + 1
            ),
        ] {
            let r = handle(&state, &post("/v1/simulate", &body));
            assert_eq!(r.status, 422, "body {body} gave {}", r.body);
            let v = Value::parse(&r.body).unwrap();
            assert!(
                v["message"].as_str().unwrap().contains("exceeds the limit"),
                "{}",
                r.body
            );
            assert_eq!(v["code"].as_str(), Some("too_expensive"), "{}", r.body);
        }
        // At the caps themselves the request is structurally accepted
        // (it may still fail for other reasons, but not the cap check).
        let body = format!(
            r#"{{"bound": 10, "items": 100, "processors": {MAX_SIMULATE_PROCESSORS}, "graph": {CHAIN}}}"#
        );
        let r = handle(&state, &post("/v1/simulate", &body));
        assert_eq!(r.status, 200, "{}", r.body);
    }

    #[test]
    fn unknown_paths_and_methods() {
        let state = AppState::new(CacheConfig::default());
        assert_eq!(handle(&state, &get("/nope")).status, 404);
        assert_eq!(handle(&state, &get("/v1/partition")).status, 405);
        assert_eq!(handle(&state, &post("/healthz", "")).status, 405);
    }

    #[test]
    fn metrics_render_after_traffic() {
        let state = AppState::new(CacheConfig::default());
        let _ = handle(&state, &get("/healthz"));
        let r = handle(&state, &get("/metrics"));
        assert_eq!(r.status, 200);
        assert!(r
            .body
            .contains("tgp_requests_total{endpoint=\"healthz\",status=\"200\"} 1"));
    }

    /// Every metric family `/metrics` renders must appear in the
    /// `docs/SERVICE.md` reference table — new series cannot ship
    /// undocumented. Traffic is driven through the flat path first so
    /// the store series (`tgp_graph_*`, `tgp_store_backing`) and the
    /// per-objective series render.
    #[test]
    fn every_rendered_metric_family_is_documented() {
        let state = AppState::new(CacheConfig::default()).with_graph_spill(1, None);
        let solve = format!(r#"{{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}}"#);
        assert_eq!(handle(&state, &post("/v1/partition", &solve)).status, 200);
        let metrics = handle(&state, &get("/metrics")).body;
        let docs = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../docs/SERVICE.md"
        ))
        .expect("read docs/SERVICE.md");
        let mut missing = Vec::new();
        for line in metrics.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap_or_default();
            let family = name
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            if !docs.contains(family) && !missing.iter().any(|m| m == family) {
                missing.push(family.to_string());
            }
        }
        assert!(
            missing.is_empty(),
            "metric families rendered by /metrics but absent from docs/SERVICE.md: {missing:?}"
        );
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec().into(),
            keep_alive: true,
        }
    }

    fn solve_header(r: &ApiResponse) -> Option<&str> {
        r.headers
            .iter()
            .find(|(k, _)| *k == "x-tgp-solve")
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn session_lifecycle_register_edit_partition_delete() {
        let state = AppState::new(CacheConfig::default());
        let body = format!(r#"{{"graph": {CHAIN}}}"#);
        let r = handle(&state, &post("/v1/graphs", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["id"].as_str(), Some("g1"));
        assert_eq!(v["version"].as_u64(), Some(1));
        assert_eq!(v["kind"].as_str(), Some("chain"));

        let r = handle(&state, &get("/v1/graphs"));
        assert_eq!(r.status, 200);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["graphs"].as_array().unwrap().len(), 1);

        // Edit: first edge weight 10 → 12, versioned.
        let patch_body =
            r#"{"version": 1, "edits": [{"op": "edge_weight", "index": 0, "weight": 12}]}"#;
        let r = handle(&state, &request("PATCH", "/v1/graphs/g1", patch_body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["version"].as_u64(), Some(2));

        // Session solve equals the stateless solve of the edited graph.
        let r = handle(
            &state,
            &post(
                "/v1/graphs/g1/partition",
                r#"{"objective": "lexicographic", "bound": 10}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(r.endpoint, "graphs");
        assert_eq!(r.objective, "lexicographic");
        assert_eq!(
            solve_header(&r),
            Some("cold"),
            "no prior solve to warm from"
        );
        let edited = r#"{"node_weights": [2, 3, 5, 7], "edge_weights": [12, 1, 10]}"#;
        let stateless = handle(
            &state,
            &post(
                "/v1/partition",
                &format!(r#"{{"objective": "lexicographic", "bound": 10, "graph": {edited}}}"#),
            ),
        );
        assert_eq!(stateless.status, 200, "{}", stateless.body);
        assert_eq!(
            r.body, stateless.body,
            "session solve must be byte-identical"
        );

        let r = handle(&state, &request("DELETE", "/v1/graphs/g1", ""));
        assert_eq!(r.status, 200, "{}", r.body);
        let r = handle(&state, &get("/v1/graphs/g1"));
        assert_eq!(r.status, 404, "{}", r.body);
    }

    #[test]
    fn session_warm_resolves_are_flagged_and_byte_identical() {
        let state = AppState::new(CacheConfig::default());
        let r = handle(
            &state,
            &post("/v1/graphs", &format!(r#"{{"graph": {CHAIN}}}"#)),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let solve = r#"{"objective": "lexicographic", "bound": 10}"#;

        // First solve is cold; the second has an exact window.
        let cold = handle(&state, &post("/v1/graphs/g1/partition", solve));
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert_eq!(solve_header(&cold), Some("cold"));
        let warm = handle(&state, &post("/v1/graphs/g1/partition", solve));
        assert_eq!(warm.status, 200, "{}", warm.body);
        assert_eq!(solve_header(&warm), Some("warm"));
        assert_eq!(warm.body, cold.body);

        // An edge edit widens the window but keeps it warm; the body
        // must match a stateless solve of the edited graph.
        let patch_body =
            r#"{"version": 1, "edits": [{"op": "edge_weight", "index": 2, "weight": 7}]}"#;
        let r = handle(&state, &request("PATCH", "/v1/graphs/g1", patch_body));
        assert_eq!(r.status, 200, "{}", r.body);
        let after_edit = handle(&state, &post("/v1/graphs/g1/partition", solve));
        assert_eq!(after_edit.status, 200, "{}", after_edit.body);
        assert_eq!(solve_header(&after_edit), Some("warm"));
        let edited = r#"{"node_weights": [2, 3, 5, 7], "edge_weights": [10, 1, 7]}"#;
        let stateless = handle(
            &state,
            &post(
                "/v1/partition",
                &format!(r#"{{"objective": "lexicographic", "bound": 10, "graph": {edited}}}"#),
            ),
        );
        assert_eq!(after_edit.body, stateless.body);

        // A vertex edit invalidates the window: next solve is cold.
        let patch_body =
            r#"{"version": 2, "edits": [{"op": "vertex_weight", "index": 0, "weight": 4}]}"#;
        let r = handle(&state, &request("PATCH", "/v1/graphs/g1", patch_body));
        assert_eq!(r.status, 200, "{}", r.body);
        let after_vertex = handle(&state, &post("/v1/graphs/g1/partition", solve));
        assert_eq!(after_vertex.status, 200, "{}", after_vertex.body);
        assert_eq!(solve_header(&after_vertex), Some("cold"));

        let metrics = handle(&state, &get("/metrics"));
        assert!(
            metrics
                .body
                .contains("tgp_session_solves_total{mode=\"warm\"} 2"),
            "{}",
            metrics.body
        );
        assert!(
            metrics
                .body
                .contains("tgp_session_solves_total{mode=\"cold\"} 2"),
            "{}",
            metrics.body
        );
        assert!(
            metrics.body.contains("tgp_sessions_open 1"),
            "{}",
            metrics.body
        );
        assert!(
            metrics.body.contains("tgp_session_edits_total 2"),
            "{}",
            metrics.body
        );
    }

    #[test]
    fn session_flat_solve_runs_out_of_core_and_stays_byte_identical() {
        // Threshold 1: every resident graph is "huge", so session
        // solves take the disk-backed flat path.
        let flat = AppState::new(CacheConfig::default()).with_graph_spill(1, None);
        let legacy = AppState::new(CacheConfig::default());
        for state in [&flat, &legacy] {
            let r = handle(
                state,
                &post("/v1/graphs", &format!(r#"{{"graph": {CHAIN}}}"#)),
            );
            assert_eq!(r.status, 200, "{}", r.body);
        }
        let solve = r#"{"objective": "lexicographic", "bound": 10}"#;
        let cold_flat = handle(&flat, &post("/v1/graphs/g1/partition", solve));
        let cold_legacy = handle(&legacy, &post("/v1/graphs/g1/partition", solve));
        assert_eq!(cold_flat.status, 200, "{}", cold_flat.body);
        assert_eq!(solve_header(&cold_flat), Some("cold"));
        assert_eq!(
            cold_flat.body, cold_legacy.body,
            "out-of-core session solve must match the registry path"
        );
        // The flat path honors the same warm-window contract.
        let warm_flat = handle(&flat, &post("/v1/graphs/g1/partition", solve));
        assert_eq!(solve_header(&warm_flat), Some("warm"));
        assert_eq!(warm_flat.body, cold_flat.body);
        let metrics = handle(&flat, &get("/metrics"));
        assert!(
            metrics.body.contains("tgp_store_backing{kind=\"disk\"} 2"),
            "{}",
            metrics.body
        );
        // Requests the flat path cannot serve fall back to the registry
        // (here: an objective outside the flat trio).
        let other = handle(
            &flat,
            &post(
                "/v1/graphs/g1/partition",
                r#"{"objective": "min_cuts", "bound": 10}"#,
            ),
        );
        let other_legacy = handle(
            &legacy,
            &post(
                "/v1/graphs/g1/partition",
                r#"{"objective": "min_cuts", "bound": 10}"#,
            ),
        );
        assert_eq!(other.status, other_legacy.status);
        assert_eq!(other.body, other_legacy.body);
    }

    #[test]
    fn session_error_codes_are_stable() {
        let state = AppState::new(CacheConfig::default());
        // Unknown graph → 404 session_not_found, on every id-taking verb.
        for r in [
            handle(&state, &get("/v1/graphs/nope")),
            handle(&state, &request("DELETE", "/v1/graphs/nope", "")),
            handle(
                &state,
                &request("PATCH", "/v1/graphs/nope", r#"{"version": 1, "edits": []}"#),
            ),
            handle(
                &state,
                &post(
                    "/v1/graphs/nope/partition",
                    r#"{"objective": "lexicographic", "bound": 10}"#,
                ),
            ),
        ] {
            assert_eq!(r.status, 404, "{}", r.body);
            let v = Value::parse(&r.body).unwrap();
            assert_eq!(v["code"].as_str(), Some("session_not_found"), "{}", r.body);
        }

        // Version conflict → 409.
        let r = handle(
            &state,
            &post("/v1/graphs", &format!(r#"{{"graph": {CHAIN}}}"#)),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let stale = r#"{"version": 7, "edits": [{"op": "edge_weight", "index": 0, "weight": 1}]}"#;
        let r = handle(&state, &request("PATCH", "/v1/graphs/g1", stale));
        assert_eq!(r.status, 409, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["code"].as_str(), Some("version_conflict"), "{}", r.body);

        // Budget exhaustion → 413.
        let tiny =
            AppState::new(CacheConfig::default()).with_sessions(Arc::new(SessionStore::new(8)));
        let r = handle(
            &tiny,
            &post("/v1/graphs", &format!(r#"{{"graph": {CHAIN}}}"#)),
        );
        assert_eq!(r.status, 413, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(
            v["code"].as_str(),
            Some("session_budget_exceeded"),
            "{}",
            r.body
        );

        // Malformed edits → 422 invalid_edit; body with "graph" → 422.
        let bad_edit = r#"{"version": 1, "edits": [{"op": "paint_it_blue"}]}"#;
        let r = handle(&state, &request("PATCH", "/v1/graphs/g1", bad_edit));
        assert_eq!(r.status, 422, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["code"].as_str(), Some("invalid_edit"), "{}", r.body);
        let r = handle(
            &state,
            &post(
                "/v1/graphs/g1/partition",
                &format!(r#"{{"objective": "lexicographic", "bound": 10, "graph": {CHAIN}}}"#),
            ),
        );
        assert_eq!(r.status, 422, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["code"].as_str(), Some("invalid_field"), "{}", r.body);

        // A failing session partition must not have corrupted the
        // resident graph: a follow-up solve still works.
        let r = handle(
            &state,
            &post(
                "/v1/graphs/g1/partition",
                r#"{"objective": "lexicographic", "bound": 10}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
    }

    #[test]
    fn session_graph_methods_and_paths_are_policed() {
        let state = AppState::new(CacheConfig::default());
        assert_eq!(
            handle(&state, &request("PUT", "/v1/graphs", "")).status,
            405
        );
        assert_eq!(
            handle(&state, &request("PUT", "/v1/graphs/g1", "")).status,
            405
        );
        assert_eq!(handle(&state, &get("/v1/graphs/g1/partition")).status, 405);
        assert_eq!(handle(&state, &get("/v1/graphs//partition")).status, 404);
        assert_eq!(handle(&state, &get("/v1/graphs/g1/nope")).status, 404);
        // Register body must be {"graph": ...} and nothing else.
        let r = handle(&state, &post("/v1/graphs", "{}"));
        assert_eq!(r.status, 422, "{}", r.body);
        let r = handle(
            &state,
            &post(
                "/v1/graphs",
                &format!(r#"{{"graph": {CHAIN}, "extra": 1}}"#),
            ),
        );
        assert_eq!(r.status, 422, "{}", r.body);
        let r = handle(&state, &post("/v1/graphs", "[1, 2]"));
        assert_eq!(r.status, 400, "{}", r.body);
    }
}
