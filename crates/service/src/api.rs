//! Request routing and the JSON API handlers.
//!
//! Endpoints:
//!
//! * `POST /v1/partition` — run a partitioning objective (`bandwidth` on
//!   chains, `bottleneck`/`procmin` on trees). Accepts a single request
//!   object or `{"requests": [...]}` for a batch.
//! * `POST /v1/simulate` — partition a chain and replay it through the
//!   shared-memory pipeline simulator.
//! * `GET /healthz` — liveness probe.
//! * `GET /metrics` — Prometheus text exposition.
//!
//! Handlers are pure functions of `(state, request)`; the transport layer
//! in [`crate::server`] owns sockets and threads. Every partition
//! response is cached under a canonical byte key of the *validated*
//! content, so formatting differences (whitespace, key order, extra
//! fields) between equivalent requests still hit.

use std::time::Instant;

use tgp_core::bottleneck::min_bottleneck_cut;
use tgp_core::pipeline::partition_chain;
use tgp_core::procmin::proc_min;
use tgp_graph::json::{FromJson, ToJson, Value};
use tgp_graph::{json, EdgeId, PathGraph, Tree, Weight};
use tgp_shmem::machine::{Interconnect, Machine};
use tgp_shmem::pipeline::{simulate_pipeline, PipelineSpec};

use crate::cache::{KeyBuilder, ResultCache};
use crate::http::Request;
use crate::metrics::Metrics;

/// Largest `items` accepted by `/v1/simulate`. The simulator schedules
/// one event per item, so this bounds per-request CPU and memory for a
/// field a client controls with a handful of bytes.
pub const MAX_SIMULATE_ITEMS: u64 = 1_000_000;

/// Largest `processors` accepted by `/v1/simulate`. The machine model
/// allocates per-processor state, so this bounds allocation the same
/// way.
pub const MAX_SIMULATE_PROCESSORS: u64 = 4_096;

/// Shared handler state: one per server.
#[derive(Debug)]
pub struct AppState {
    /// Rendered-response cache.
    pub cache: ResultCache,
    /// Service metrics.
    pub metrics: Metrics,
}

impl AppState {
    /// Creates state with a cache of the given capacity.
    pub fn new(cache_capacity: usize) -> Self {
        AppState {
            cache: ResultCache::new(cache_capacity),
            metrics: Metrics::default(),
        }
    }
}

/// What a handler tells the transport to send.
#[derive(Debug)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: String,
    /// `content-type` header value.
    pub content_type: &'static str,
    /// Metrics endpoint label.
    pub endpoint: &'static str,
}

fn json_response(status: u16, endpoint: &'static str, body: String) -> ApiResponse {
    ApiResponse {
        status,
        body,
        content_type: "application/json",
        endpoint,
    }
}

fn error_response(status: u16, endpoint: &'static str, message: &str) -> ApiResponse {
    json_response(
        status,
        endpoint,
        format!("{}\n", json!({ "error": message })),
    )
}

/// A handler-level failure: status code plus message.
type Failure = (u16, String);

fn bad(message: impl Into<String>) -> Failure {
    (400, message.into())
}

fn unprocessable(message: impl Into<String>) -> Failure {
    (422, message.into())
}

/// Routes one request and records its metrics.
pub fn handle(state: &AppState, req: &Request) -> ApiResponse {
    let started = Instant::now();
    let response = route(state, req);
    state
        .metrics
        .record_request(response.endpoint, response.status, started.elapsed());
    response
}

fn route(state: &AppState, req: &Request) -> ApiResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => json_response(200, "healthz", "{\"status\":\"ok\"}\n".into()),
        ("GET", "/metrics") => ApiResponse {
            status: 200,
            body: state.metrics.render(),
            content_type: "text/plain; version=0.0.4",
            endpoint: "metrics",
        },
        ("POST", "/v1/partition") => partition_endpoint(state, &req.body),
        ("POST", "/v1/simulate") => simulate_endpoint(state, &req.body),
        (_, "/healthz") | (_, "/metrics") | (_, "/v1/partition") | (_, "/v1/simulate") => {
            error_response(405, "other", "method not allowed")
        }
        _ => error_response(404, "other", "no such endpoint"),
    }
}

fn parse_body(body: &[u8]) -> Result<Value, Failure> {
    let text = std::str::from_utf8(body).map_err(|_| bad("request body is not UTF-8"))?;
    Value::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))
}

fn partition_endpoint(state: &AppState, body: &[u8]) -> ApiResponse {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err((status, msg)) => return error_response(status, "partition", &msg),
    };
    // Batch form: {"requests": [...]} → {"results": [...]} where each
    // result is either a response object or {"error": ...}. The batch
    // itself is 200 as long as the envelope parses; per-item failures
    // are reported in place so one bad graph doesn't void its siblings.
    if let Some(requests) = value.get("requests") {
        let Some(items) = requests.as_array() else {
            return error_response(400, "partition", "\"requests\" must be an array");
        };
        let results: Vec<Value> = items
            .iter()
            .map(|item| match partition_one(state, item) {
                Ok(rendered) => Value::parse(&rendered).expect("rendered response is JSON"),
                Err((_, msg)) => json!({ "error": msg.as_str() }),
            })
            .collect();
        return json_response(
            200,
            "partition",
            format!("{}\n", json!({ "results": results })),
        );
    }
    match partition_one(state, &value) {
        Ok(rendered) => json_response(200, "partition", format!("{rendered}\n")),
        Err((status, msg)) => error_response(status, "partition", &msg),
    }
}

/// Handles one partition request object, going through the cache.
/// Returns the rendered (compact) response JSON.
fn partition_one(state: &AppState, value: &Value) -> Result<String, Failure> {
    let objective = value["objective"]
        .as_str()
        .ok_or_else(|| bad("missing string field \"objective\""))?
        .to_string();
    let bound = value["bound"]
        .as_u64()
        .ok_or_else(|| bad("missing non-negative integer field \"bound\""))?;
    let graph = value
        .get("graph")
        .ok_or_else(|| bad("missing field \"graph\""))?;

    match objective.as_str() {
        "bandwidth" => {
            let chain = PathGraph::from_json(graph)
                .map_err(|e| bad(format!("\"graph\" is not a valid chain: {e}")))?;
            let key = chain_key(&objective, bound, &chain);
            with_cache(state, &key, || {
                let part = partition_chain(&chain, Weight::new(bound))
                    .map_err(|e| unprocessable(e.to_string()))?;
                Ok(json!({
                    "objective": "bandwidth",
                    "bound": bound,
                    "cut": cut_values(part.cut.iter()),
                    "segments": part.segments.iter().map(|s| s.to_json()).collect::<Vec<_>>(),
                    "processors": part.processors,
                    "bandwidth": part.bandwidth.get(),
                    "bottleneck": part.bottleneck.get(),
                })
                .to_string())
            })
        }
        "bottleneck" => {
            let tree = Tree::from_json(graph)
                .map_err(|e| bad(format!("\"graph\" is not a valid tree: {e}")))?;
            let key = tree_key(&objective, bound, &tree);
            with_cache(state, &key, || {
                let r = min_bottleneck_cut(&tree, Weight::new(bound))
                    .map_err(|e| unprocessable(e.to_string()))?;
                let components = tree
                    .components(&r.cut)
                    .map_err(|e| unprocessable(e.to_string()))?
                    .count();
                Ok(json!({
                    "objective": "bottleneck",
                    "bound": bound,
                    "cut": cut_values(r.cut.iter()),
                    "bottleneck": r.bottleneck.get(),
                    "components": components,
                })
                .to_string())
            })
        }
        "procmin" => {
            let tree = Tree::from_json(graph)
                .map_err(|e| bad(format!("\"graph\" is not a valid tree: {e}")))?;
            let key = tree_key(&objective, bound, &tree);
            with_cache(state, &key, || {
                let r = proc_min(&tree, Weight::new(bound))
                    .map_err(|e| unprocessable(e.to_string()))?;
                Ok(json!({
                    "objective": "procmin",
                    "bound": bound,
                    "cut": cut_values(r.cut.iter()),
                    "processors": r.component_count,
                })
                .to_string())
            })
        }
        other => Err(bad(format!(
            "objective must be bandwidth, bottleneck or procmin, got {other:?}"
        ))),
    }
}

fn simulate_endpoint(state: &AppState, body: &[u8]) -> ApiResponse {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err((status, msg)) => return error_response(status, "simulate", &msg),
    };
    match simulate_one(state, &value) {
        Ok(rendered) => json_response(200, "simulate", format!("{rendered}\n")),
        Err((status, msg)) => error_response(status, "simulate", &msg),
    }
}

fn simulate_one(state: &AppState, value: &Value) -> Result<String, Failure> {
    let bound = value["bound"]
        .as_u64()
        .ok_or_else(|| bad("missing non-negative integer field \"bound\""))?;
    let items = value["items"]
        .as_u64()
        .ok_or_else(|| bad("missing non-negative integer field \"items\""))?;
    if items > MAX_SIMULATE_ITEMS {
        return Err(unprocessable(format!(
            "\"items\" is {items}, which exceeds the limit of {MAX_SIMULATE_ITEMS}"
        )));
    }
    let items = items as usize;
    let graph = value
        .get("graph")
        .ok_or_else(|| bad("missing field \"graph\""))?;
    let chain = PathGraph::from_json(graph)
        .map_err(|e| bad(format!("\"graph\" is not a valid chain: {e}")))?;
    let processors_override = match value.get("processors") {
        None => None,
        Some(v) => {
            let p = v
                .as_u64()
                .ok_or_else(|| bad("\"processors\" must be a non-negative integer"))?;
            if p > MAX_SIMULATE_PROCESSORS {
                return Err(unprocessable(format!(
                    "\"processors\" is {p}, which exceeds the limit of {MAX_SIMULATE_PROCESSORS}"
                )));
            }
            Some(p as usize)
        }
    };
    let interconnect_name = match value.get("interconnect") {
        None => "bus",
        Some(v) => v
            .as_str()
            .ok_or_else(|| bad("\"interconnect\" must be \"bus\" or \"crossbar\""))?,
    };
    let interconnect = match interconnect_name {
        "bus" => Interconnect::Bus,
        "crossbar" => Interconnect::Crossbar,
        other => {
            return Err(bad(format!(
                "\"interconnect\" must be \"bus\" or \"crossbar\", got {other:?}"
            )))
        }
    };

    let mut builder = KeyBuilder::default();
    builder.write(b"simulate/");
    builder.write(interconnect_name.as_bytes());
    builder.write_u64(bound);
    builder.write_u64(items as u64);
    builder.write_u64(processors_override.map(|p| p as u64 + 1).unwrap_or(0));
    write_chain(&mut builder, &chain);
    let key = builder.finish();

    with_cache(state, &key, || {
        let part = partition_chain(&chain, Weight::new(bound))
            .map_err(|e| unprocessable(e.to_string()))?;
        let processors = processors_override.unwrap_or(part.processors);
        let machine = Machine::new(processors, 1, 1, 0, interconnect)
            .map_err(|e| unprocessable(e.to_string()))?;
        let spec = PipelineSpec::from_partition(&chain, &part.cut)
            .map_err(|e| unprocessable(e.to_string()))?;
        let report =
            simulate_pipeline(&spec, &machine, items).map_err(|e| unprocessable(e.to_string()))?;
        Ok(json!({
            "bound": bound,
            "processors": processors,
            "items": items,
            "makespan": report.makespan,
            "throughput": report.throughput(),
            "mean_utilization": report.mean_utilization(),
            "interconnect_utilization": report.interconnect_utilization(),
            "total_traffic": report.total_traffic,
        })
        .to_string())
    })
}

/// Cache-through: serve a rendered response from the cache or compute,
/// render and remember it. Only successes are cached — a failure (e.g.
/// infeasible bound) is cheap to recompute and should not occupy a slot.
fn with_cache(
    state: &AppState,
    key: &[u8],
    compute: impl FnOnce() -> Result<String, Failure>,
) -> Result<String, Failure> {
    if let Some(hit) = state.cache.get(key) {
        state.metrics.record_cache(true);
        return Ok(hit);
    }
    state.metrics.record_cache(false);
    let rendered = compute()?;
    state.cache.insert(key, rendered.clone());
    Ok(rendered)
}

fn cut_values(cut: impl Iterator<Item = EdgeId>) -> Vec<Value> {
    cut.map(|e| Value::from(e.index())).collect()
}

/// Canonical key for a chain request: objective, bound, then the
/// validated weights — independent of the request's JSON formatting.
fn chain_key(objective: &str, bound: u64, chain: &PathGraph) -> Vec<u8> {
    let mut builder = KeyBuilder::default();
    builder.write(objective.as_bytes());
    builder.write(b"/chain");
    builder.write_u64(bound);
    write_chain(&mut builder, chain);
    builder.finish()
}

fn write_chain(builder: &mut KeyBuilder, chain: &PathGraph) {
    builder.write_u64(chain.len() as u64);
    for w in chain.node_weights() {
        builder.write_u64(w.get());
    }
    for w in chain.edge_weights() {
        builder.write_u64(w.get());
    }
}

/// Canonical key for a tree request.
fn tree_key(objective: &str, bound: u64, tree: &Tree) -> Vec<u8> {
    let mut builder = KeyBuilder::default();
    builder.write(objective.as_bytes());
    builder.write(b"/tree");
    builder.write_u64(bound);
    builder.write_u64(tree.len() as u64);
    for w in tree.node_weights() {
        builder.write_u64(w.get());
    }
    for e in tree.edges() {
        builder.write_u64(e.a.index() as u64);
        builder.write_u64(e.b.index() as u64);
        builder.write_u64(e.weight.get());
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    const CHAIN: &str = r#"{"node_weights": [2, 3, 5, 7], "edge_weights": [10, 1, 10]}"#;
    const TREE: &str = r#"{"node_weights": [1, 2, 3, 4],
        "edges": [{"a": 0, "b": 1, "weight": 10},
                  {"a": 0, "b": 2, "weight": 20},
                  {"a": 2, "b": 3, "weight": 30}]}"#;

    #[test]
    fn healthz_is_ok() {
        let state = AppState::new(16);
        let r = handle(&state, &get("/healthz"));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("ok"));
    }

    #[test]
    fn bandwidth_partition_matches_direct_solver() {
        let state = AppState::new(16);
        let body = format!(r#"{{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}}"#);
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();

        let chain = PathGraph::from_json(&Value::parse(CHAIN).unwrap()).unwrap();
        let direct = partition_chain(&chain, Weight::new(10)).unwrap();
        assert_eq!(
            v["processors"].as_u64().unwrap() as usize,
            direct.processors
        );
        assert_eq!(v["bandwidth"].as_u64().unwrap(), direct.bandwidth.get());
        let cut: Vec<u64> = v["cut"]
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e.as_u64().unwrap())
            .collect();
        let direct_cut: Vec<u64> = direct.cut.iter().map(|e| e.index() as u64).collect();
        assert_eq!(cut, direct_cut);
    }

    #[test]
    fn tree_objectives_work() {
        let state = AppState::new(16);
        for (objective, expect_key) in [("bottleneck", "components"), ("procmin", "processors")] {
            let body = format!(r#"{{"objective": "{objective}", "bound": 10, "graph": {TREE}}}"#);
            let r = handle(&state, &post("/v1/partition", &body));
            assert_eq!(r.status, 200, "{objective}: {}", r.body);
            let v = Value::parse(&r.body).unwrap();
            assert!(v[expect_key].as_u64().is_some(), "{objective}: {}", r.body);
        }
    }

    #[test]
    fn equivalent_requests_hit_the_cache() {
        let state = AppState::new(16);
        let a = format!(r#"{{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}}"#);
        // Same content, different formatting and field order.
        let b =
            format!(r#"{{ "graph": {CHAIN},   "bound": 10, "objective": "bandwidth", "x": 1 }}"#);
        let r1 = handle(&state, &post("/v1/partition", &a));
        let r2 = handle(&state, &post("/v1/partition", &b));
        assert_eq!(r1.body, r2.body);
        assert_eq!(state.metrics.cache_hits(), 1);
    }

    #[test]
    fn batch_requests_partition_independently() {
        let state = AppState::new(16);
        let body = format!(
            r#"{{"requests": [
                {{"objective": "bandwidth", "bound": 10, "graph": {CHAIN}}},
                {{"objective": "nonsense", "bound": 10, "graph": {CHAIN}}},
                {{"objective": "procmin", "bound": 10, "graph": {TREE}}}
            ]}}"#
        );
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        let results = v["results"].as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert!(results[0]["objective"].as_str().is_some());
        assert!(results[1]["error"].as_str().is_some());
        assert!(results[2]["processors"].as_u64().is_some());
    }

    #[test]
    fn malformed_bodies_are_400_not_panics() {
        let state = AppState::new(16);
        for bad_body in [
            "",
            "{",
            "[]",
            "null",
            r#"{"objective": "bandwidth"}"#,
            r#"{"objective": "bandwidth", "bound": -3, "graph": {}}"#,
            r#"{"objective": "bandwidth", "bound": 10, "graph": {"node_weights": [1], "edge_weights": [1, 2]}}"#,
            r#"{"objective": 7, "bound": 10, "graph": {}}"#,
        ] {
            let r = handle(&state, &post("/v1/partition", bad_body));
            assert_eq!(r.status, 400, "body {bad_body:?} gave {}", r.body);
            assert!(Value::parse(&r.body).unwrap()["error"].as_str().is_some());
        }
    }

    #[test]
    fn infeasible_bound_is_422() {
        let state = AppState::new(16);
        let body = format!(r#"{{"objective": "bandwidth", "bound": 0, "graph": {CHAIN}}}"#);
        let r = handle(&state, &post("/v1/partition", &body));
        assert_eq!(r.status, 422, "{}", r.body);
    }

    #[test]
    fn simulate_reports_throughput() {
        let state = AppState::new(16);
        let body = format!(r#"{{"bound": 10, "items": 5, "graph": {CHAIN}}}"#);
        let r = handle(&state, &post("/v1/simulate", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert!(v["makespan"].as_u64().unwrap() > 0);
        assert!(v["throughput"].as_f64().unwrap() > 0.0);
        // Identical request → cache hit.
        let _ = handle(&state, &post("/v1/simulate", &body));
        assert_eq!(state.metrics.cache_hits(), 1);
    }

    #[test]
    fn simulate_rejects_resource_exhausting_scalars() {
        let state = AppState::new(16);
        // One event is scheduled per item and per-processor state is
        // allocated up front, so absurd scalars must be refused before
        // any work or allocation happens.
        for body in [
            format!(r#"{{"bound": 10, "items": 10000000000, "graph": {CHAIN}}}"#),
            format!(
                r#"{{"bound": 10, "items": 5, "processors": 1000000000000000000, "graph": {CHAIN}}}"#
            ),
            format!(
                r#"{{"bound": 10, "items": {}, "graph": {CHAIN}}}"#,
                MAX_SIMULATE_ITEMS + 1
            ),
            format!(
                r#"{{"bound": 10, "items": 5, "processors": {}, "graph": {CHAIN}}}"#,
                MAX_SIMULATE_PROCESSORS + 1
            ),
        ] {
            let r = handle(&state, &post("/v1/simulate", &body));
            assert_eq!(r.status, 422, "body {body} gave {}", r.body);
            assert!(
                Value::parse(&r.body).unwrap()["error"]
                    .as_str()
                    .unwrap()
                    .contains("exceeds the limit"),
                "{}",
                r.body
            );
        }
        // At the caps themselves the request is structurally accepted
        // (it may still fail for other reasons, but not the cap check).
        let body = format!(
            r#"{{"bound": 10, "items": 100, "processors": {MAX_SIMULATE_PROCESSORS}, "graph": {CHAIN}}}"#
        );
        let r = handle(&state, &post("/v1/simulate", &body));
        assert_eq!(r.status, 200, "{}", r.body);
    }

    #[test]
    fn unknown_paths_and_methods() {
        let state = AppState::new(16);
        assert_eq!(handle(&state, &get("/nope")).status, 404);
        assert_eq!(handle(&state, &get("/v1/partition")).status, 405);
        assert_eq!(handle(&state, &post("/healthz", "")).status, 405);
    }

    #[test]
    fn metrics_render_after_traffic() {
        let state = AppState::new(16);
        let _ = handle(&state, &get("/healthz"));
        let r = handle(&state, &get("/metrics"));
        assert_eq!(r.status, 200);
        assert!(r
            .body
            .contains("tgp_requests_total{endpoint=\"healthz\",status=\"200\"} 1"));
    }
}
