//! The v2 error/response envelope: one JSON shape for every error body
//! on every endpoint in both `--io` modes.
//!
//! ```json
//! {"code": "deadline_exceeded", "message": "...",
//!  "retry_after": 2, "deadline_remaining_ms": 0, "partial": true}
//! ```
//!
//! `code` and `message` are always present; `retry_after` (seconds,
//! mirrored in a `Retry-After` header by the transport),
//! `deadline_remaining_ms` and `partial` appear only when meaningful.
//! `code` is drawn from the closed set in [`STABLE_CODES`] — clients
//! (and `loadgen --strict`) may dispatch on it; the human `message` may
//! change between releases, the codes may not.

use tgp_graph::json::Value;

/// Every stable error code any endpoint can emit, sorted. New codes are
/// an API change: add them here, to the endpoint table below, and to
/// docs/SERVICE.md (`tgp endpoints --check` pins the table).
pub const STABLE_CODES: &[&str] = &[
    "bad_request",
    "body_too_large",
    "cancelled",
    "deadline_exceeded",
    "infeasible",
    "invalid_edit",
    "invalid_field",
    "invalid_graph",
    "method_not_allowed",
    "missing_field",
    "not_found",
    "overloaded",
    "session_budget_exceeded",
    "session_not_found",
    "shed_deadline",
    "shed_expensive",
    "too_expensive",
    "unknown_field",
    "unknown_objective",
    "version_conflict",
    "wrong_graph_kind",
];

/// Whether `code` is one of the stable envelope codes.
pub fn is_stable_code(code: &str) -> bool {
    STABLE_CODES.binary_search(&code).is_ok()
}

/// One endpoint row for `tgp endpoints` and docs/SERVICE.md: method,
/// path, summary, and the stable error codes the endpoint can emit
/// beyond the transport-level set.
///
/// Every endpoint can additionally emit the transport codes
/// `bad_request`, `body_too_large`, `overloaded` and
/// `method_not_allowed`/`not_found`, so those are not repeated per row.
pub const ENDPOINTS: &[(&str, &str, &str, &str)] = &[
    (
        "POST",
        "/v1/partition",
        "run any registered objective (single request or batch)",
        "unknown_objective, missing_field, invalid_field, unknown_field, wrong_graph_kind, \
         too_expensive, infeasible, shed_expensive, shed_deadline, deadline_exceeded, cancelled",
    ),
    (
        "POST",
        "/v1/simulate",
        "partition a chain and simulate the pipeline",
        "missing_field, invalid_field, too_expensive, infeasible, shed_expensive, \
         deadline_exceeded",
    ),
    (
        "POST",
        "/v1/graphs",
        "register a resident session graph",
        "missing_field, invalid_field, invalid_graph, session_budget_exceeded",
    ),
    ("GET", "/v1/graphs", "list resident graphs", "-"),
    (
        "GET",
        "/v1/graphs/<id>",
        "resident graph metadata (version, sizes)",
        "session_not_found",
    ),
    (
        "PATCH",
        "/v1/graphs/<id>",
        "apply an atomic edit batch under a version check",
        "missing_field, invalid_field, invalid_edit, version_conflict, session_not_found",
    ),
    (
        "DELETE",
        "/v1/graphs/<id>",
        "drop a resident graph",
        "session_not_found",
    ),
    (
        "POST",
        "/v1/graphs/<id>/partition",
        "solve against the resident graph (warm-started; delta responses)",
        "unknown_objective, missing_field, invalid_field, session_not_found, infeasible, \
         deadline_exceeded, cancelled",
    ),
    ("GET", "/healthz", "liveness probe", "-"),
    ("GET", "/metrics", "Prometheus text exposition", "-"),
    (
        "GET",
        "/debug/trace/<id>",
        "one completed request trace (requires --debug-endpoints)",
        "bad_request, not_found",
    ),
    (
        "GET",
        "/debug/slow",
        "slowest retained traces (requires --debug-endpoints)",
        "not_found",
    ),
    (
        "GET",
        "/debug/events",
        "recent journal events (requires --debug-endpoints)",
        "not_found",
    ),
];

/// Renders a v2 envelope as a compact JSON object (no trailing
/// newline). Field order is fixed: `code`, `message`, then the
/// optional fields — byte-stable for tests and caches.
pub fn envelope_value(
    code: &str,
    message: &str,
    retry_after: Option<u64>,
    deadline_remaining_ms: Option<u64>,
    partial: bool,
) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("code".to_string(), Value::from(code)),
        ("message".to_string(), Value::from(message)),
    ];
    if let Some(secs) = retry_after {
        fields.push(("retry_after".to_string(), Value::from(secs)));
    }
    if let Some(ms) = deadline_remaining_ms {
        fields.push(("deadline_remaining_ms".to_string(), Value::from(ms)));
    }
    if partial {
        fields.push(("partial".to_string(), Value::Bool(true)));
    }
    Value::Object(fields)
}

/// [`envelope_value`] rendered as a newline-terminated body string.
pub fn envelope_body(
    code: &str,
    message: &str,
    retry_after: Option<u64>,
    deadline_remaining_ms: Option<u64>,
    partial: bool,
) -> String {
    format!(
        "{}\n",
        envelope_value(code, message, retry_after, deadline_remaining_ms, partial)
    )
}

/// Parses a response body and checks it is a well-formed v2 envelope
/// with a stable code; returns the code on success. Used by tests and
/// by `loadgen --strict`.
pub fn parse_envelope(body: &[u8]) -> Result<String, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = Value::parse(text).map_err(|e| format!("body is not JSON: {e}"))?;
    let code = value
        .get("code")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("envelope has no string \"code\": {text}"))?;
    if !is_stable_code(code) {
        return Err(format!("code {code:?} is not a stable envelope code"));
    }
    value
        .get("message")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("envelope has no string \"message\": {text}"))?;
    Ok(code.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_codes_are_sorted_and_unique() {
        let mut sorted = STABLE_CODES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, STABLE_CODES, "STABLE_CODES must be sorted+unique");
    }

    #[test]
    fn envelope_field_order_is_stable() {
        let body = envelope_body("deadline_exceeded", "too late", Some(2), Some(0), true);
        assert_eq!(
            body,
            "{\"code\":\"deadline_exceeded\",\"message\":\"too late\",\
             \"retry_after\":2,\"deadline_remaining_ms\":0,\"partial\":true}\n"
        );
        let minimal = envelope_body("bad_request", "nope", None, None, false);
        assert_eq!(minimal, "{\"code\":\"bad_request\",\"message\":\"nope\"}\n");
    }

    #[test]
    fn parse_envelope_accepts_stable_and_rejects_unknown() {
        let ok = envelope_body("overloaded", "busy", Some(1), None, false);
        assert_eq!(parse_envelope(ok.as_bytes()).unwrap(), "overloaded");
        let unknown = envelope_body("made_up_code", "?", None, None, false);
        assert!(parse_envelope(unknown.as_bytes()).is_err());
        assert!(parse_envelope(b"{\"error\":\"v1 shape\"}").is_err());
        assert!(parse_envelope(b"not json").is_err());
    }

    #[test]
    fn every_endpoint_error_list_uses_stable_codes() {
        for (_, path, _, errors) in ENDPOINTS {
            if *errors == "-" {
                continue;
            }
            for code in errors.split(',').map(str::trim) {
                assert!(is_stable_code(code), "{path}: {code:?} not in STABLE_CODES");
            }
        }
    }

    #[test]
    fn solver_error_codes_are_all_stable() {
        use tgp_solvers::SolveError;
        let samples = [
            SolveError::DeadlineExceeded,
            SolveError::Cancelled,
            SolveError::Infeasible {
                message: String::new(),
            },
        ];
        for e in samples {
            assert!(is_stable_code(e.code()), "{}", e.code());
        }
    }
}
