//! Append-on-ack journal for `--cache-file`, ported from the session
//! store's snapshot+log discipline (`tgp-session`'s journal): every
//! admitted insert appends one checksummed record with a single
//! `write_all`, so an abrupt kill (`kill -9`) loses at most one torn
//! tail record instead of everything since the last whole-file dump.
//!
//! On boot the longest intact prefix is replayed through the normal
//! admission path and the torn tail (if any) is truncated; a growing
//! log is periodically *compacted* — rewritten as a snapshot of the
//! live entries via a temp sibling and an atomic rename — which is
//! also what graceful shutdown does.
//!
//! File layout:
//!
//! ```text
//! magic "TGPCJRNL" | version u64 LE          (16-byte header)
//! [payload_len u64 LE | fnv1a(payload) u64 LE | payload]*
//! ```
//!
//! Each payload is one cache entry (the journal is a log of inserts;
//! replay applies them in order, so a later insert under the same key
//! wins, exactly as it did live):
//!
//! ```text
//! key_len u64 LE | cost u64 LE | ttl_remaining_ms u64 LE | key | value
//! ```
//!
//! Unlike the session journal, payloads are raw bytes, not JSON —
//! canonical cache keys are binary.
//!
//! A legacy `TGPCACHE` dump at the same path is migrated on attach:
//! loaded with the old validator, then rewritten in journal form.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::cache::fnv1a;

const MAGIC: &[u8; 8] = b"TGPCJRNL";
const FORMAT_VERSION: u64 = 1;
const HEADER_LEN: u64 = 16;
/// Record frame: payload length + checksum.
const FRAME_LEN: usize = 16;
/// Upper bound on a single record, against absurd corrupted lengths.
const MAX_RECORD_LEN: u64 = 1 << 32;
/// Entry payload prefix: key_len + cost + ttl_remaining.
pub(crate) const ENTRY_PREFIX: usize = 24;

/// One cache entry decoded from a journal record.
pub(crate) struct EntryRecord {
    pub key: Vec<u8>,
    pub value: String,
    pub cost: u64,
    pub ttl_remaining_ms: u64,
}

/// Encodes one entry as a record payload.
pub(crate) fn encode_entry(key: &[u8], value: &str, cost: u64, ttl_remaining_ms: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(ENTRY_PREFIX + key.len() + value.len());
    payload.extend_from_slice(&(key.len() as u64).to_le_bytes());
    payload.extend_from_slice(&cost.to_le_bytes());
    payload.extend_from_slice(&ttl_remaining_ms.to_le_bytes());
    payload.extend_from_slice(key);
    payload.extend_from_slice(value.as_bytes());
    payload
}

/// Decodes a record payload. `None` for a structurally invalid payload
/// (possible only if a checksum collision let corruption through —
/// the record is skipped, never trusted).
pub(crate) fn decode_entry(payload: &[u8]) -> Option<EntryRecord> {
    if payload.len() < ENTRY_PREFIX {
        return None;
    }
    let key_len = u64::from_le_bytes(payload[0..8].try_into().ok()?) as usize;
    let cost = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let ttl_remaining_ms = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    let body = &payload[ENTRY_PREFIX..];
    if key_len > body.len() {
        return None;
    }
    let value = std::str::from_utf8(&body[key_len..]).ok()?.to_string();
    Some(EntryRecord {
        key: body[..key_len].to_vec(),
        value,
        cost,
        ttl_remaining_ms,
    })
}

/// The longest intact prefix of a journal file.
pub(crate) struct Replay {
    /// Record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the intact prefix (where appends must resume).
    pub keep_len: u64,
    /// Whether a torn/corrupt tail was found past `keep_len`.
    pub truncated: bool,
}

/// Reads the journal at `path`. `Ok(None)` when the file does not
/// exist (first boot). A file that is not a cache journal at all —
/// foreign magic, future version — is an error, so it is never
/// silently truncated or overwritten. Corruption *after* a valid
/// header only shortens the replay.
pub(crate) fn read(path: &Path) -> io::Result<Option<Replay>> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if data.len() < HEADER_LEN as usize || &data[0..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a tgp cache journal (bad magic)",
        ));
    }
    let version = u64::from_le_bytes(data[8..16].try_into().expect("sliced 8"));
    if version != FORMAT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported cache journal version {version}"),
        ));
    }
    let mut records = Vec::new();
    let mut offset = HEADER_LEN as usize;
    loop {
        let remaining = data.len() - offset;
        if remaining == 0 {
            return Ok(Some(Replay {
                records,
                keep_len: offset as u64,
                truncated: false,
            }));
        }
        if remaining < FRAME_LEN {
            break; // torn frame
        }
        let len = u64::from_le_bytes(data[offset..offset + 8].try_into().expect("sliced 8"));
        let sum = u64::from_le_bytes(data[offset + 8..offset + 16].try_into().expect("sliced 8"));
        if len > MAX_RECORD_LEN || len as usize > remaining - FRAME_LEN {
            break; // absurd or torn payload length
        }
        let payload = &data[offset + FRAME_LEN..offset + FRAME_LEN + len as usize];
        if fnv1a(payload) != sum {
            break; // corrupt payload
        }
        records.push(payload.to_vec());
        offset += FRAME_LEN + len as usize;
    }
    Ok(Some(Replay {
        records,
        keep_len: offset as u64,
        truncated: true,
    }))
}

/// An open journal positioned for appends.
#[derive(Debug)]
pub(crate) struct CacheJournal {
    file: File,
    path: PathBuf,
    len: u64,
}

impl CacheJournal {
    /// Creates a fresh journal (header only), truncating whatever was
    /// at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file.write_all(&header)?;
        Ok(CacheJournal {
            file,
            path: path.to_path_buf(),
            len: HEADER_LEN,
        })
    }

    /// Opens an existing journal for appending, truncating any torn
    /// tail past `keep_len` (as reported by [`read`]).
    pub fn open_for_append(path: &Path, keep_len: u64) -> io::Result<Self> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(keep_len)?;
        let mut journal = CacheJournal {
            file,
            path: path.to_path_buf(),
            len: keep_len,
        };
        journal.file.seek(SeekFrom::End(0))?;
        Ok(journal)
    }

    /// Appends one record with a single `write_all`, so an abrupt kill
    /// leaves at most one torn tail for [`read`] to trim.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Compacts the journal to exactly `records` (a snapshot of the
    /// live entries): writes a temp sibling, renames it over the
    /// journal, and reopens for appends. Readers never observe a
    /// partial file.
    pub fn rewrite(&mut self, records: &[Vec<u8>]) -> io::Result<()> {
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut replacement = CacheJournal::create(&tmp)?;
            for record in records {
                replacement.append(record)?;
            }
            replacement.file.flush()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().write(true).open(&self.path)?;
        self.len = self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    /// Current journal length in bytes (header + intact records).
    pub fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tgp-cache-journal-{tag}-{}", std::process::id()))
    }

    fn entry(i: u64) -> Vec<u8> {
        encode_entry(
            format!("key-{i}").as_bytes(),
            &format!("value-{i}"),
            i,
            u64::MAX,
        )
    }

    #[test]
    fn round_trips_records_through_create_append_read() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut journal = CacheJournal::create(&path).unwrap();
        for i in 0..5 {
            journal.append(&entry(i)).unwrap();
        }
        let replay = read(&path).unwrap().expect("file exists");
        assert_eq!(replay.records.len(), 5);
        assert!(!replay.truncated);
        assert_eq!(replay.keep_len, journal.len());
        let decoded = decode_entry(&replay.records[3]).unwrap();
        assert_eq!(decoded.key, b"key-3");
        assert_eq!(decoded.value, "value-3");
        assert_eq!(decoded.cost, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reads_as_none() {
        assert!(read(&temp_path("missing")).unwrap().is_none());
    }

    #[test]
    fn torn_tail_is_trimmed_and_appends_resume() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let mut journal = CacheJournal::create(&path).unwrap();
        journal.append(&entry(0)).unwrap();
        journal.append(&entry(1)).unwrap();
        drop(journal);
        // Tear the last record mid-payload, as kill -9 mid-write would.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();

        let replay = read(&path).unwrap().unwrap();
        assert_eq!(replay.records.len(), 1, "torn record dropped");
        assert!(replay.truncated);

        let mut journal = CacheJournal::open_for_append(&path, replay.keep_len).unwrap();
        journal.append(&entry(2)).unwrap();
        let replay = read(&path).unwrap().unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.truncated);
        assert_eq!(decode_entry(&replay.records[1]).unwrap().key, b"key-2");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checksum_and_absurd_length_stop_the_replay() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let mut journal = CacheJournal::create(&path).unwrap();
        journal.append(&entry(0)).unwrap();
        let boundary = journal.len();
        journal.append(&entry(1)).unwrap();
        drop(journal);

        // Flip a payload byte in the second record.
        let mut data = std::fs::read(&path).unwrap();
        let i = boundary as usize + FRAME_LEN;
        data[i] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        let replay = read(&path).unwrap().unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.truncated);
        assert_eq!(replay.keep_len, boundary);

        // Absurd length field.
        let mut data = std::fs::read(&path).unwrap();
        data[boundary as usize..boundary as usize + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let replay = read(&path).unwrap().unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.truncated);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_and_future_files_are_errors_not_truncations() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"totally not a journal, much longer than 16").unwrap();
        assert!(read(&path).is_err());

        let mut future = Vec::new();
        future.extend_from_slice(MAGIC);
        future.extend_from_slice(&99u64.to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(read(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_compacts_and_keeps_accepting_appends() {
        let path = temp_path("rewrite");
        let _ = std::fs::remove_file(&path);
        let mut journal = CacheJournal::create(&path).unwrap();
        for i in 0..50 {
            journal.append(&entry(i)).unwrap();
        }
        let before = journal.len();
        journal.rewrite(&[entry(7)]).unwrap();
        assert!(journal.len() < before);
        journal.append(&entry(8)).unwrap();
        let replay = read(&path).unwrap().unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(decode_entry(&replay.records[0]).unwrap().key, b"key-7");
        assert_eq!(decode_entry(&replay.records[1]).unwrap().key, b"key-8");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_payload_decodes_to_none() {
        assert!(decode_entry(b"").is_none());
        assert!(decode_entry(&[0u8; 23]).is_none());
        // key_len larger than the body.
        let mut p = Vec::new();
        p.extend_from_slice(&100u64.to_le_bytes());
        p.extend_from_slice(&0u64.to_le_bytes());
        p.extend_from_slice(&0u64.to_le_bytes());
        p.extend_from_slice(b"short");
        assert!(decode_entry(&p).is_none());
        // non-UTF-8 value.
        let mut p = Vec::new();
        p.extend_from_slice(&1u64.to_le_bytes());
        p.extend_from_slice(&0u64.to_le_bytes());
        p.extend_from_slice(&0u64.to_le_bytes());
        p.extend_from_slice(&[b'k', 0xff, 0xfe]);
        assert!(decode_entry(&p).is_none());
    }
}
