//! Sharded LRU cache for rendered partition responses.
//!
//! Keys are 64-bit FNV-1a digests of the canonical request content
//! (objective, bound, weights — see [`KeyHasher`]); values are the
//! rendered JSON response bodies, which are immutable once computed, so
//! a hit can be served without re-running any solver.
//!
//! Sharding bounds lock contention: a key's shard is picked from its top
//! hash bits, each shard holds `capacity / shards` entries behind its own
//! mutex, and eviction is strict LRU per shard via an intrusive
//! doubly-linked list over a slab (indices, not pointers — the crate
//! forbids `unsafe`).

use std::collections::HashMap;
use std::sync::Mutex;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 8;

const NIL: usize = usize::MAX;

/// 64-bit FNV-1a, the canonical-content hash for cache keys.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u64,
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl KeyHasher {
    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Feeds one `u64` (little-endian), with a tag byte so that adjacent
    /// fields can't collide by concatenation.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&[0xfe]);
        self.write(&v.to_le_bytes());
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[derive(Debug)]
struct Entry {
    key: u64,
    value: String,
    prev: usize,
    next: usize,
}

/// One shard: a slab of entries threaded into an LRU list plus a key
/// index.
#[derive(Debug, Default)]
struct Shard {
    slots: Vec<Entry>,
    free: Vec<usize>,
    index: HashMap<u64, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: u64) -> Option<String> {
        let &i = self.index.get(&key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].value.clone())
    }

    fn insert(&mut self, key: u64, value: String, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if let Some(&i) = self.index.get(&key) {
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.index.len() >= capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.index.remove(&self.slots[victim].key);
            self.free.push(victim);
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.index.insert(key, i);
        self.push_front(i);
    }
}

/// The sharded LRU cache.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl ResultCache {
    /// Creates a cache holding roughly `capacity` entries in total.
    /// `capacity = 0` disables caching (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // Top bits pick the shard; low bits index within the shard's map.
        &self.shards[(key >> 61) as usize & (SHARDS - 1)]
    }

    /// Looks up a rendered response, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<String> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
    }

    /// Stores a rendered response, evicting the shard's LRU entry when
    /// the shard is full.
    pub fn insert(&self, key: u64, value: String) {
        if self.per_shard_capacity == 0 {
            return;
        }
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, self.per_shard_capacity);
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").index.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = KeyHasher::default();
        assert_eq!(h.finish(), 0xcbf29ce484222325); // offset basis
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = KeyHasher::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn tagged_u64s_do_not_concatenate() {
        let mut a = KeyHasher::default();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = KeyHasher::default();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = ResultCache::new(64);
        assert!(cache.get(42).is_none());
        cache.insert(42, "payload".into());
        assert_eq!(cache.get(42).as_deref(), Some("payload"));
        cache.insert(42, "updated".into());
        assert_eq!(cache.get(42).as_deref(), Some("updated"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_within_a_shard() {
        let cache = ResultCache::new(SHARDS * 2); // 2 entries per shard
                                                  // Three keys in the same shard (same top bits).
        let keys = [0u64, 1, 2];
        cache.insert(keys[0], "a".into());
        cache.insert(keys[1], "b".into());
        let _ = cache.get(keys[0]); // refresh key 0, key 1 becomes LRU
        cache.insert(keys[2], "c".into()); // evicts key 1
        assert!(cache.get(keys[0]).is_some());
        assert!(cache.get(keys[1]).is_none());
        assert!(cache.get(keys[2]).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(1, "x".into());
        assert!(cache.get(1).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn heavy_reuse_keeps_size_bounded() {
        let cache = ResultCache::new(32);
        for i in 0..10_000u64 {
            cache.insert(i.wrapping_mul(0x9E3779B97F4A7C15), format!("v{i}"));
        }
        assert!(cache.len() <= 32 + SHARDS); // div_ceil slack per shard
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cache = Arc::new(ResultCache::new(128));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let key = (t * 1_000 + i) % 300;
                        if i % 3 == 0 {
                            cache.insert(key, format!("{t}:{i}"));
                        } else {
                            let _ = cache.get(key);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 128 + SHARDS);
    }
}
