//! Sharded LRU cache for rendered partition responses.
//!
//! Keys are the canonical request bytes themselves (objective, bound,
//! weights — see [`KeyBuilder`]); values are the rendered JSON response
//! bodies, which are immutable once computed, so a hit can be served
//! without re-running any solver.
//!
//! A 64-bit FNV-1a digest of the key picks the shard and the bucket
//! within the shard, but it is *never* trusted for equality: FNV-1a is
//! not collision-resistant, and the service handles untrusted input, so
//! every lookup compares the full canonical key bytes before serving a
//! hit. Two distinct requests that happen to share a digest simply land
//! in the same bucket and coexist.
//!
//! Sharding bounds lock contention: each shard holds `capacity / shards`
//! entries behind its own mutex, and eviction is strict LRU per shard
//! via an intrusive doubly-linked list over a slab (indices, not
//! pointers — the crate forbids `unsafe`).

use std::collections::HashMap;
use std::sync::Mutex;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 8;

const NIL: usize = usize::MAX;

/// 64-bit FNV-1a digest, used only to pick shards and hash buckets.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

// The canonical key builder moved to `tgp-solvers` (solvers define
// their own keys via `Solver::canonical_key`); re-exported here so
// existing embedders keep compiling.
pub use tgp_solvers::KeyBuilder;

#[derive(Debug)]
struct Entry {
    hash: u64,
    key: Box<[u8]>,
    value: String,
    prev: usize,
    next: usize,
}

/// One shard: a slab of entries threaded into an LRU list plus a
/// hash-bucket index. Buckets hold every slot whose key shares the
/// digest; equality is decided by comparing the stored key bytes.
#[derive(Debug, Default)]
struct Shard {
    slots: Vec<Entry>,
    free: Vec<usize>,
    index: HashMap<u64, Vec<usize>>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// The slot holding exactly `key`, if cached.
    fn lookup(&self, hash: u64, key: &[u8]) -> Option<usize> {
        self.index
            .get(&hash)?
            .iter()
            .copied()
            .find(|&i| *self.slots[i].key == *key)
    }

    fn remove_from_index(&mut self, i: usize) {
        let hash = self.slots[i].hash;
        let bucket = self.index.get_mut(&hash).expect("indexed entry");
        bucket.retain(|&j| j != i);
        if bucket.is_empty() {
            self.index.remove(&hash);
        }
    }

    fn get(&mut self, hash: u64, key: &[u8]) -> Option<String> {
        let i = self.lookup(hash, key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].value.clone())
    }

    fn insert(&mut self, hash: u64, key: &[u8], value: String, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if let Some(i) = self.lookup(hash, key) {
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.len() >= capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.remove_from_index(victim);
            self.free.push(victim);
        }
        let entry = Entry {
            hash,
            key: key.into(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = entry;
                i
            }
            None => {
                self.slots.push(entry);
                self.slots.len() - 1
            }
        };
        self.index.entry(hash).or_default().push(i);
        self.push_front(i);
    }
}

/// The sharded LRU cache.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl ResultCache {
    /// Creates a cache holding roughly `capacity` entries in total.
    /// `capacity = 0` disables caching (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
        }
    }

    fn shard_index(key_hash: u64) -> usize {
        // Top bits pick the shard; the full hash buckets within it.
        (key_hash >> 61) as usize & (SHARDS - 1)
    }

    /// Looks up a rendered response, refreshing its recency on hit.
    pub fn get(&self, key: &[u8]) -> Option<String> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        let hash = fnv1a(key);
        self.shards[Self::shard_index(hash)]
            .lock()
            .expect("cache shard poisoned")
            .get(hash, key)
    }

    /// Stores a rendered response, evicting the shard's LRU entry when
    /// the shard is full.
    pub fn insert(&self, key: &[u8], value: String) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let hash = fnv1a(key);
        self.shards[Self::shard_index(hash)]
            .lock()
            .expect("cache shard poisoned")
            .insert(hash, key, value, self.per_shard_capacity);
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325); // offset basis
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn tagged_u64s_do_not_concatenate() {
        let mut a = KeyBuilder::default();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = KeyBuilder::default();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = ResultCache::new(64);
        assert!(cache.get(b"k42").is_none());
        cache.insert(b"k42", "payload".into());
        assert_eq!(cache.get(b"k42").as_deref(), Some("payload"));
        cache.insert(b"k42", "updated".into());
        assert_eq!(cache.get(b"k42").as_deref(), Some("updated"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn digest_collisions_do_not_alias_entries() {
        // Force two *different* keys into the same hash bucket by
        // driving the shard directly with an identical digest: the
        // byte comparison must keep them apart.
        let mut shard = Shard::new();
        shard.insert(7, b"alpha", "va".into(), 8);
        shard.insert(7, b"beta", "vb".into(), 8);
        assert_eq!(shard.get(7, b"alpha").as_deref(), Some("va"));
        assert_eq!(shard.get(7, b"beta").as_deref(), Some("vb"));
        assert_eq!(shard.get(7, b"gamma"), None);
        assert_eq!(shard.len(), 2);

        // Evicting one colliding entry must leave the other reachable.
        let mut shard = Shard::new();
        shard.insert(7, b"alpha", "va".into(), 2);
        shard.insert(7, b"beta", "vb".into(), 2);
        shard.insert(9, b"gamma", "vc".into(), 2); // evicts LRU "alpha"
        assert_eq!(shard.get(7, b"alpha"), None);
        assert_eq!(shard.get(7, b"beta").as_deref(), Some("vb"));
        assert_eq!(shard.get(9, b"gamma").as_deref(), Some("vc"));
    }

    #[test]
    fn lru_evicts_oldest_within_a_shard() {
        let cache = ResultCache::new(SHARDS * 2); // 2 entries per shard
                                                  // Three keys that land in the same shard.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let target = ResultCache::shard_index(fnv1a(b"k0"));
        for i in 0u32.. {
            let key = format!("k{i}").into_bytes();
            if ResultCache::shard_index(fnv1a(&key)) == target {
                keys.push(key);
                if keys.len() == 3 {
                    break;
                }
            }
        }
        cache.insert(&keys[0], "a".into());
        cache.insert(&keys[1], "b".into());
        let _ = cache.get(&keys[0]); // refresh key 0, key 1 becomes LRU
        cache.insert(&keys[2], "c".into()); // evicts key 1
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[1]).is_none());
        assert!(cache.get(&keys[2]).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(b"x", "x".into());
        assert!(cache.get(b"x").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn heavy_reuse_keeps_size_bounded() {
        let cache = ResultCache::new(32);
        for i in 0..10_000u64 {
            cache.insert(format!("key-{i}").as_bytes(), format!("v{i}"));
        }
        assert!(cache.len() <= 32 + SHARDS); // div_ceil slack per shard
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cache = Arc::new(ResultCache::new(128));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let key = format!("key-{}", (t * 1_000 + i) % 300);
                        if i % 3 == 0 {
                            cache.insert(key.as_bytes(), format!("{t}:{i}"));
                        } else {
                            let _ = cache.get(key.as_bytes());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 128 + SHARDS);
    }
}
