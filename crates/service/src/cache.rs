//! Sharded, byte-budgeted LRU cache for rendered partition responses,
//! with optional per-entry TTL and dump/load persistence.
//!
//! Keys are the canonical request bytes themselves (objective, bound,
//! weights — see [`KeyBuilder`]); values are the rendered JSON response
//! bodies, which are immutable once computed, so a hit can be served
//! without re-running any solver.
//!
//! A 64-bit FNV-1a digest of the key picks the shard and the bucket
//! within the shard, but it is *never* trusted for equality: FNV-1a is
//! not collision-resistant, and the service handles untrusted input, so
//! every lookup compares the full canonical key bytes before serving a
//! hit. Two distinct requests that happen to share a digest simply land
//! in the same bucket and coexist.
//!
//! Sharding bounds lock contention: each shard owns `budget / shards`
//! bytes behind its own mutex, and eviction is strict LRU per shard via
//! an intrusive doubly-linked list over a slab (indices, not pointers —
//! the crate forbids `unsafe`).
//!
//! # Byte budget and admission
//!
//! The cache budgets *bytes*, not entry counts: each entry is charged
//! its key length plus value length plus a fixed bookkeeping overhead,
//! and a shard evicts from its LRU tail until a new entry fits. An
//! admission guard rejects entries larger than
//! [`CacheConfig::max_entry_bytes`] outright — one giant response must
//! not flush a shard — unless the solver's cost estimate marks the
//! response as expensive to recompute, in which case the limit is
//! relaxed fourfold (evicting many cheap entries to keep one costly
//! result is a good trade).
//!
//! # Persistence
//!
//! Two mechanisms share the on-disk duty:
//!
//! - [`ResultCache::dump`] / [`ResultCache::load`]: the legacy
//!   whole-file snapshot (versioned, FNV-checksummed, written to a
//!   temp sibling then renamed). Still used by tests and as the
//!   migration source for old files.
//! - [`ResultCache::attach_journal`]: the append-on-ack snapshot+log
//!   discipline `--cache-file` uses (see the `cache_journal` module).
//!   Every admitted insert appends one record, so `kill -9` loses at
//!   most a torn tail; boot replays the longest intact prefix, and a
//!   grown log is compacted back to a snapshot (periodically, and on
//!   graceful shutdown). Cached values are pure functions of their
//!   canonical keys, so replaying an insert whose TTL elapsed since
//!   the append can only re-serve a still-correct response; TTL here
//!   is a freshness/memory policy, not a correctness guard.
//!
//! A file that fails validation — magic, version, checksum, per-entry
//! bounds — is rejected with an error and never partially trusted.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cache_journal::{self, CacheJournal};

/// Default number of independently locked shards (power of two).
/// Multi-loop servers raise it via [`CacheConfig::shards`] so each
/// event loop's workers rarely contend on the same shard mutex.
const SHARDS: usize = 8;

/// Upper bound on [`CacheConfig::shards`]: past this, per-shard budgets
/// get too small to admit normal entries.
const MAX_SHARDS: usize = 256;

const NIL: usize = usize::MAX;

/// Fixed per-entry byte charge covering slab, index and list
/// bookkeeping, so a flood of tiny entries cannot evade the budget.
const ENTRY_OVERHEAD: usize = 96;

/// Cost-estimate threshold (in solver work units) above which a
/// response counts as expensive to recompute and earns the relaxed
/// admission limit.
const COSTLY_WORK_UNITS: u64 = 1_000_000;

/// Expiry sentinel: an entry with this deadline never expires.
const NO_EXPIRY: u64 = u64::MAX;

const DUMP_MAGIC: &[u8; 8] = b"TGPCACHE";
const DUMP_VERSION: u64 = 1;
/// Header: magic + version + entry count + payload checksum.
const DUMP_HEADER_BYTES: usize = 32;
/// Per-entry header: key length + value length + cost + remaining TTL.
const DUMP_ENTRY_HEADER_BYTES: usize = 32;

/// 64-bit FNV-1a digest, used to pick shards and hash buckets and as
/// the persistence-file checksum (integrity against corruption, not
/// tampering — the key-byte comparison is what defends correctness).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

// The canonical key builder moved to `tgp-solvers` (solvers define
// their own keys via `Solver::canonical_key`); re-exported here so
// existing embedders keep compiling.
pub use tgp_solvers::KeyBuilder;

/// Sizing and lifetime policy for a [`ResultCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total byte budget across all shards. `0` disables caching.
    pub budget_bytes: usize,
    /// Entries older than this are served as misses. `None` means
    /// entries live until evicted.
    pub ttl: Option<Duration>,
    /// Admission limit: entries larger than this are rejected instead
    /// of cached (relaxed 4× for responses that were expensive to
    /// compute). Clamped to the per-shard budget so an admitted entry
    /// always fits.
    pub max_entry_bytes: usize,
    /// Number of independently locked shards. Rounded up to a power of
    /// two and clamped to `[1, 256]`. The default (8) suits a
    /// single-loop server; the sharded runtime scales this with the
    /// loop count so concurrent loops' workers land on distinct shard
    /// mutexes for all but genuinely colliding keys.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::with_budget(32 << 20)
    }
}

impl CacheConfig {
    /// A config with the given byte budget, no TTL, and the default
    /// admission limit of 1/64 of the budget (at least 4 KiB).
    pub fn with_budget(budget_bytes: usize) -> Self {
        CacheConfig {
            budget_bytes,
            ttl: None,
            max_entry_bytes: (budget_bytes / 64).max(4096),
            shards: SHARDS,
        }
    }

    /// Returns the config with its shard count raised to cover `loops`
    /// event loops (8 shards per loop, power-of-two, never lowered).
    pub fn scaled_for_loops(mut self, loops: usize) -> Self {
        self.shards = self.shards.max(loops.max(1) * SHARDS);
        self
    }
}

#[derive(Debug)]
struct Entry {
    hash: u64,
    key: Box<[u8]>,
    value: String,
    /// Solver work-unit estimate, persisted so re-admission after a
    /// warm load applies the same policy.
    cost: u64,
    /// Milliseconds on the cache clock; [`NO_EXPIRY`] means never.
    expires_at_ms: u64,
    prev: usize,
    next: usize,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.key.len() + self.value.len() + ENTRY_OVERHEAD
    }
}

fn entry_bytes(key: &[u8], value: &str) -> usize {
    key.len() + value.len() + ENTRY_OVERHEAD
}

enum Lookup {
    Hit(String),
    Expired,
    Miss,
}

/// One shard: a slab of entries threaded into an LRU list plus a
/// hash-bucket index. Buckets hold every slot whose key shares the
/// digest; equality is decided by comparing the stored key bytes.
#[derive(Debug, Default)]
struct Shard {
    slots: Vec<Entry>,
    free: Vec<usize>,
    index: HashMap<u64, Vec<usize>>,
    head: usize, // most recently used
    tail: usize, // least recently used
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// The slot holding exactly `key`, if cached.
    fn lookup(&self, hash: u64, key: &[u8]) -> Option<usize> {
        self.index
            .get(&hash)?
            .iter()
            .copied()
            .find(|&i| *self.slots[i].key == *key)
    }

    fn remove_from_index(&mut self, i: usize) {
        let hash = self.slots[i].hash;
        let bucket = self.index.get_mut(&hash).expect("indexed entry");
        bucket.retain(|&j| j != i);
        if bucket.is_empty() {
            self.index.remove(&hash);
        }
    }

    /// Unlinks, unindexes, and frees slot `i`, releasing its bytes.
    fn remove(&mut self, i: usize) {
        self.unlink(i);
        self.remove_from_index(i);
        self.bytes -= self.slots[i].bytes();
        self.slots[i].key = Box::default();
        self.slots[i].value = String::new();
        self.free.push(i);
    }

    fn get(&mut self, hash: u64, key: &[u8], now_ms: u64) -> Lookup {
        let Some(i) = self.lookup(hash, key) else {
            return Lookup::Miss;
        };
        if now_ms >= self.slots[i].expires_at_ms {
            self.remove(i);
            return Lookup::Expired;
        }
        self.unlink(i);
        self.push_front(i);
        Lookup::Hit(self.slots[i].value.clone())
    }

    /// Inserts (or replaces) an entry, evicting from the LRU tail until
    /// the shard fits its byte budget. The caller has already verified
    /// the entry alone fits `budget`, so this always converges with the
    /// new entry resident. Returns the number of evictions.
    fn insert(
        &mut self,
        hash: u64,
        key: &[u8],
        value: String,
        cost: u64,
        expires_at_ms: u64,
        budget: usize,
    ) -> u64 {
        let mut evicted = 0;
        if let Some(i) = self.lookup(hash, key) {
            self.bytes -= self.slots[i].bytes();
            self.slots[i].value = value;
            self.slots[i].cost = cost;
            self.slots[i].expires_at_ms = expires_at_ms;
            self.bytes += self.slots[i].bytes();
            self.unlink(i);
            self.push_front(i);
            // A larger replacement can push the shard over budget.
            while self.bytes > budget && self.tail != i {
                self.remove(self.tail);
                evicted += 1;
            }
            return evicted;
        }
        let entry = Entry {
            hash,
            key: key.into(),
            value,
            cost,
            expires_at_ms,
            prev: NIL,
            next: NIL,
        };
        let add = entry.bytes();
        while self.bytes + add > budget && self.tail != NIL {
            self.remove(self.tail);
            evicted += 1;
        }
        self.bytes += add;
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = entry;
                i
            }
            None => {
                self.slots.push(entry);
                self.slots.len() - 1
            }
        };
        self.index.entry(hash).or_default().push(i);
        self.push_front(i);
        evicted
    }
}

/// The sharded, byte-budgeted LRU cache.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_budget: usize,
    max_entry_bytes: usize,
    budget_bytes: usize,
    /// Default TTL in ms applied by [`ResultCache::insert`];
    /// [`NO_EXPIRY`] when the config sets no TTL.
    default_ttl_ms: u64,
    /// All entry deadlines are measured on this clock (ms since cache
    /// creation), so wall-clock jumps cannot mass-expire the cache.
    epoch: Instant,
    /// Test-only clock skew; stays 0 in production.
    skew_ms: AtomicU64,
    /// Bumped on every mutation; flushers compare it against the
    /// generation they last dumped to skip redundant writes.
    generation: AtomicU64,
    evicted: AtomicU64,
    rejected_oversize: AtomicU64,
    expired: AtomicU64,
    warm_loaded: AtomicU64,
    /// Insert log attached by [`ResultCache::attach_journal`]; `None`
    /// runs memory-only. Dropped (with a log line) on the first append
    /// failure, so a full disk degrades persistence, not serving.
    journal: Mutex<Option<CacheJournal>>,
}

/// What [`ResultCache::attach_journal`] found at the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttachReport {
    /// Entries admitted from the replay.
    pub admitted: usize,
    /// Whether a torn/corrupt tail was trimmed.
    pub truncated: bool,
    /// Whether a legacy whole-file dump was migrated to journal form.
    pub migrated: bool,
}

impl ResultCache {
    /// Creates a cache with the given sizing and lifetime policy.
    /// A zero byte budget disables caching (every lookup misses).
    pub fn new(config: CacheConfig) -> Self {
        let shard_count = config
            .shards
            .clamp(1, MAX_SHARDS)
            .next_power_of_two()
            .min(MAX_SHARDS);
        let per_shard_budget = config.budget_bytes.div_ceil(shard_count);
        ResultCache {
            shards: (0..shard_count).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_budget,
            max_entry_bytes: config.max_entry_bytes.min(per_shard_budget),
            budget_bytes: config.budget_bytes,
            default_ttl_ms: config.ttl.map_or(NO_EXPIRY, |ttl| {
                u64::try_from(ttl.as_millis()).unwrap_or(NO_EXPIRY)
            }),
            epoch: Instant::now(),
            skew_ms: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            rejected_oversize: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            warm_loaded: AtomicU64::new(0),
            journal: Mutex::new(None),
        }
    }

    /// Convenience constructor: byte budget only, defaults elsewhere.
    pub fn with_budget(budget_bytes: usize) -> Self {
        ResultCache::new(CacheConfig::with_budget(budget_bytes))
    }

    fn shard_index(&self, key_hash: u64) -> usize {
        let n = self.shards.len();
        if n == 1 {
            return 0;
        }
        // Top log2(n) bits pick the shard; the full hash buckets within
        // it. (For the default 8 shards this is the historical `>> 61`.)
        (key_hash >> (64 - n.trailing_zeros())) as usize & (n - 1)
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX - 1)
            + self.skew_ms.load(Ordering::Relaxed)
    }

    /// Moves the cache clock forward without sleeping, for
    /// deterministic TTL tests.
    #[cfg(test)]
    fn advance(&self, by: Duration) {
        self.skew_ms
            .fetch_add(u64::try_from(by.as_millis()).unwrap(), Ordering::Relaxed);
    }

    fn deadline(&self, ttl_ms: u64) -> u64 {
        if ttl_ms == NO_EXPIRY {
            NO_EXPIRY
        } else {
            self.now_ms().saturating_add(ttl_ms)
        }
    }

    /// Looks up a rendered response, refreshing its recency on hit.
    /// An expired entry is removed and reported as a miss.
    pub fn get(&self, key: &[u8]) -> Option<String> {
        if self.per_shard_budget == 0 {
            return None;
        }
        let now_ms = self.now_ms();
        let hash = fnv1a(key);
        let outcome = self.shards[self.shard_index(hash)]
            .lock()
            .expect("cache shard poisoned")
            .get(hash, key, now_ms);
        match outcome {
            Lookup::Hit(value) => Some(value),
            Lookup::Expired => {
                self.expired.fetch_add(1, Ordering::Relaxed);
                self.generation.fetch_add(1, Ordering::Relaxed);
                None
            }
            Lookup::Miss => None,
        }
    }

    /// Stores a rendered response under the configured TTL. `cost` is
    /// the solver's work estimate for recomputing the response; pass
    /// `0` when unknown (strictest admission). Returns whether the
    /// entry was admitted.
    pub fn insert(&self, key: &[u8], value: String, cost: u64) -> bool {
        self.insert_with_deadline(key, value, cost, self.deadline(self.default_ttl_ms))
    }

    fn insert_with_deadline(
        &self,
        key: &[u8],
        value: String,
        cost: u64,
        expires_at_ms: u64,
    ) -> bool {
        self.insert_inner(key, value, cost, expires_at_ms, true)
    }

    fn insert_inner(
        &self,
        key: &[u8],
        value: String,
        cost: u64,
        expires_at_ms: u64,
        journal: bool,
    ) -> bool {
        if self.per_shard_budget == 0 {
            return false;
        }
        let allowance = if cost >= COSTLY_WORK_UNITS {
            self.max_entry_bytes.saturating_mul(4)
        } else {
            self.max_entry_bytes
        };
        if entry_bytes(key, &value) > allowance.min(self.per_shard_budget) {
            self.rejected_oversize.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let hash = fnv1a(key);
        // The record is built before the value moves into the shard;
        // the append itself happens after the insert is in memory
        // (append-on-ack), outside the shard lock. Skipped entirely
        // when no journal is attached.
        let journal = journal
            && self
                .journal
                .lock()
                .expect("cache journal poisoned")
                .is_some();
        let record = if journal {
            let ttl_remaining = if expires_at_ms == NO_EXPIRY {
                NO_EXPIRY
            } else {
                expires_at_ms.saturating_sub(self.now_ms())
            };
            Some(cache_journal::encode_entry(
                key,
                &value,
                cost,
                ttl_remaining,
            ))
        } else {
            None
        };
        let evicted = self.shards[self.shard_index(hash)]
            .lock()
            .expect("cache shard poisoned")
            .insert(hash, key, value, cost, expires_at_ms, self.per_shard_budget);
        self.evicted.fetch_add(evicted, Ordering::Relaxed);
        self.generation.fetch_add(1, Ordering::Relaxed);
        if let Some(record) = record {
            self.journal_append(&record);
        }
        true
    }

    /// Appends one record to the attached journal, detaching it (with
    /// a log line) on the first IO failure so a full disk degrades
    /// persistence rather than request serving.
    fn journal_append(&self, record: &[u8]) {
        let mut guard = self.journal.lock().expect("cache journal poisoned");
        if let Some(journal) = guard.as_mut() {
            if let Err(e) = journal.append(record) {
                eprintln!("tgp-serve cache journal append failed: {e} (persistence disabled)");
                *guard = None;
            }
        }
    }

    /// Attaches the append-on-ack journal at `path`, replaying whatever
    /// is already there through the normal admission path first:
    ///
    /// * missing file — a fresh journal is created;
    /// * an existing journal — the longest intact prefix is replayed
    ///   (any torn tail from an abrupt kill is trimmed) and appends
    ///   resume after it;
    /// * a legacy `TGPCACHE` whole-file dump — loaded with the old
    ///   validator, then rewritten in journal form (`migrated`).
    ///
    /// A file that is neither — foreign magic, future version, or an
    /// invalid legacy dump — is an error and is left untouched; the
    /// caller should boot cold and memory-only rather than destroy
    /// whatever the operator pointed us at.
    pub fn attach_journal(&self, path: &Path) -> Result<AttachReport, String> {
        if self.per_shard_budget == 0 {
            return Err("cache budget is zero; nothing to persist".into());
        }
        let mut magic = [0u8; 8];
        let legacy = match std::fs::File::open(path) {
            Ok(mut f) => {
                use std::io::Read as _;
                let mut n = 0;
                while n < magic.len() {
                    match f.read(&mut magic[n..]) {
                        Ok(0) => break,
                        Ok(m) => n += m,
                        Err(e) => return Err(format!("read {}: {e}", path.display())),
                    }
                }
                n == magic.len() && &magic == DUMP_MAGIC
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(format!("open {}: {e}", path.display())),
        };
        if legacy {
            let admitted = self.load(path)?;
            let mut journal = CacheJournal::create(path)
                .map_err(|e| format!("rewrite {} as a journal: {e}", path.display()))?;
            for record in self.snapshot_records() {
                journal
                    .append(&record)
                    .map_err(|e| format!("migrate {}: {e}", path.display()))?;
            }
            *self.journal.lock().expect("cache journal poisoned") = Some(journal);
            return Ok(AttachReport {
                admitted,
                truncated: false,
                migrated: true,
            });
        }
        let replay = cache_journal::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        match replay {
            None => {
                let journal = CacheJournal::create(path)
                    .map_err(|e| format!("create {}: {e}", path.display()))?;
                *self.journal.lock().expect("cache journal poisoned") = Some(journal);
                Ok(AttachReport {
                    admitted: 0,
                    truncated: false,
                    migrated: false,
                })
            }
            Some(replay) => {
                let mut admitted = 0usize;
                for payload in &replay.records {
                    // A payload that fails to decode (checksum collision
                    // let corruption through) is skipped, not trusted.
                    let Some(rec) = cache_journal::decode_entry(payload) else {
                        continue;
                    };
                    let deadline = self.deadline(rec.ttl_remaining_ms);
                    if self.insert_inner(&rec.key, rec.value, rec.cost, deadline, false) {
                        admitted += 1;
                    }
                }
                self.warm_loaded
                    .fetch_add(admitted as u64, Ordering::Relaxed);
                let journal = CacheJournal::open_for_append(path, replay.keep_len)
                    .map_err(|e| format!("open {}: {e}", path.display()))?;
                *self.journal.lock().expect("cache journal poisoned") = Some(journal);
                Ok(AttachReport {
                    admitted,
                    truncated: replay.truncated,
                    migrated: false,
                })
            }
        }
    }

    /// Journal payloads for every live (unexpired) entry, walking each
    /// shard LRU→MRU so replay restores recency, with remaining TTLs.
    fn snapshot_records(&self) -> Vec<Vec<u8>> {
        let now_ms = self.now_ms();
        let mut records = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            let mut i = shard.tail;
            while i != NIL {
                let e = &shard.slots[i];
                if now_ms < e.expires_at_ms {
                    let ttl_remaining = if e.expires_at_ms == NO_EXPIRY {
                        NO_EXPIRY
                    } else {
                        e.expires_at_ms - now_ms
                    };
                    records.push(cache_journal::encode_entry(
                        &e.key,
                        &e.value,
                        e.cost,
                        ttl_remaining,
                    ));
                }
                i = shard.slots[i].prev;
            }
        }
        records
    }

    /// Compacts the attached journal to a snapshot of the live entries
    /// (temp sibling + atomic rename). No-op without a journal. The
    /// journal lock is held across the snapshot, so an insert that
    /// already made it into the journal is also in the snapshot — the
    /// rewrite never loses an acknowledged record.
    pub fn compact_journal(&self) -> std::io::Result<()> {
        let mut guard = self.journal.lock().expect("cache journal poisoned");
        let Some(journal) = guard.as_mut() else {
            return Ok(());
        };
        let records = self.snapshot_records();
        if let Err(e) = journal.rewrite(&records) {
            eprintln!("tgp-serve cache journal compaction failed: {e} (persistence disabled)");
            *guard = None;
            return Err(e);
        }
        Ok(())
    }

    /// Whether the journal has grown enough past the live data to be
    /// worth compacting (over twice the live bytes, plus slack so tiny
    /// caches don't compact on every insert).
    pub fn should_compact(&self) -> bool {
        match self.journal_len() {
            Some(len) => len > 2 * self.bytes_used() as u64 + (64 << 10),
            None => false,
        }
    }

    /// Bytes in the attached journal, or `None` when running
    /// memory-only.
    pub fn journal_len(&self) -> Option<u64> {
        self.journal
            .lock()
            .expect("cache journal poisoned")
            .as_ref()
            .map(CacheJournal::len)
    }

    /// Number of cached entries across all shards (including entries
    /// that have expired but not yet been touched).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget, across all shards.
    pub fn bytes_used(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// The configured total byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Mutation counter; unchanged generation means an earlier dump is
    /// still current.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Serialises every live (unexpired) entry to `path`, writing a
    /// temp sibling first and renaming so readers never observe a
    /// partial file. Entries carry their remaining TTL.
    pub fn dump(&self, path: &Path) -> std::io::Result<()> {
        let now_ms = self.now_ms();
        let mut payload = Vec::new();
        let mut count = 0u64;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            // Walk LRU→MRU so re-insertion on load restores recency.
            let mut i = shard.tail;
            while i != NIL {
                let e = &shard.slots[i];
                if now_ms < e.expires_at_ms {
                    let ttl_remaining = if e.expires_at_ms == NO_EXPIRY {
                        NO_EXPIRY
                    } else {
                        e.expires_at_ms - now_ms
                    };
                    push_u64(&mut payload, e.key.len() as u64);
                    push_u64(&mut payload, e.value.len() as u64);
                    push_u64(&mut payload, e.cost);
                    push_u64(&mut payload, ttl_remaining);
                    payload.extend_from_slice(&e.key);
                    payload.extend_from_slice(e.value.as_bytes());
                    count += 1;
                }
                i = shard.slots[i].prev;
            }
        }
        let mut file = Vec::with_capacity(DUMP_HEADER_BYTES + payload.len());
        file.extend_from_slice(DUMP_MAGIC);
        push_u64(&mut file, DUMP_VERSION);
        push_u64(&mut file, count);
        push_u64(&mut file, fnv1a(&payload));
        file.extend_from_slice(&payload);

        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &file)?;
        std::fs::rename(&tmp, path)
    }

    /// Warm-loads a file written by [`ResultCache::dump`]. Every entry
    /// passes the normal admission path, so a file dumped under a
    /// larger budget cannot overfill this cache. Returns the number of
    /// entries admitted, or a description of why the file was rejected
    /// — in which case the cache is left exactly as it was and the
    /// caller should boot cold.
    ///
    /// Validation order matters: magic, version and checksum are
    /// checked before any entry is parsed, and per-entry lengths are
    /// bounds-checked against the remaining payload before slicing, so
    /// a corrupt or truncated file can neither panic nor partially
    /// populate the cache.
    pub fn load(&self, path: &Path) -> Result<usize, String> {
        let data = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        if data.len() < DUMP_HEADER_BYTES {
            return Err("cache file truncated: incomplete header".into());
        }
        if &data[0..8] != DUMP_MAGIC {
            return Err("not a tgp cache file (bad magic)".into());
        }
        let version = read_u64(&data[8..16]);
        if version != DUMP_VERSION {
            return Err(format!(
                "unsupported cache file version {version} (expected {DUMP_VERSION})"
            ));
        }
        let count = read_u64(&data[16..24]);
        let checksum = read_u64(&data[24..32]);
        let payload = &data[DUMP_HEADER_BYTES..];
        if fnv1a(payload) != checksum {
            return Err("cache file checksum mismatch".into());
        }
        // Validate the full payload before touching the cache, so a
        // malformed file loads nothing rather than a prefix.
        let mut parsed: Vec<(&[u8], &str, u64, u64)> = Vec::new();
        let mut offset = 0usize;
        for i in 0..count {
            let remaining = payload.len() - offset;
            if remaining < DUMP_ENTRY_HEADER_BYTES {
                return Err(format!("cache file truncated in entry {i} header"));
            }
            let key_len = read_u64(&payload[offset..offset + 8]);
            let value_len = read_u64(&payload[offset + 8..offset + 16]);
            let cost = read_u64(&payload[offset + 16..offset + 24]);
            let ttl_remaining = read_u64(&payload[offset + 24..offset + 32]);
            offset += DUMP_ENTRY_HEADER_BYTES;
            let body = (payload.len() - offset) as u64;
            if key_len > body || value_len > body - key_len {
                return Err(format!("cache file truncated in entry {i} body"));
            }
            let (key_len, value_len) = (key_len as usize, value_len as usize);
            let key = &payload[offset..offset + key_len];
            offset += key_len;
            let value = std::str::from_utf8(&payload[offset..offset + value_len])
                .map_err(|_| format!("cache file entry {i} value is not UTF-8"))?;
            offset += value_len;
            parsed.push((key, value, cost, ttl_remaining));
        }
        if offset != payload.len() {
            return Err("cache file has trailing bytes after the last entry".into());
        }
        let mut admitted = 0usize;
        for (key, value, cost, ttl_remaining) in parsed {
            if self.insert_with_deadline(key, value.to_string(), cost, self.deadline(ttl_remaining))
            {
                admitted += 1;
            }
        }
        self.warm_loaded
            .fetch_add(admitted as u64, Ordering::Relaxed);
        Ok(admitted)
    }

    /// Appends the cache's Prometheus metrics to `out`.
    pub fn render_metrics(&self, out: &mut String) {
        use std::fmt::Write as _;
        let gauges = [
            (
                "tgp_cache_entries",
                "Live cache entries.",
                self.len() as u64,
            ),
            (
                "tgp_cache_bytes_used",
                "Bytes charged against the cache budget.",
                self.bytes_used() as u64,
            ),
            (
                "tgp_cache_bytes_budget",
                "Configured cache byte budget.",
                self.budget_bytes as u64,
            ),
            (
                "tgp_cache_journal_bytes",
                "Bytes in the attached cache journal (0 when memory-only).",
                self.journal_len().unwrap_or(0),
            ),
        ];
        for (name, help, value) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        let counters = [
            (
                "tgp_cache_evicted_total",
                "Entries evicted to fit the byte budget.",
                self.evicted.load(Ordering::Relaxed),
            ),
            (
                "tgp_cache_rejected_oversize_total",
                "Entries refused by the admission guard.",
                self.rejected_oversize.load(Ordering::Relaxed),
            ),
            (
                "tgp_cache_expired_total",
                "Entries dropped because their TTL elapsed.",
                self.expired.load(Ordering::Relaxed),
            ),
            (
                "tgp_cache_warm_loaded_total",
                "Entries admitted from a cache file at boot.",
                self.warm_loaded.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("caller sliced 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Budget sized so each shard fits `per_shard` minimal entries of
    /// key "kNN" + value "vNN"-ish (~`ENTRY_OVERHEAD + 8` bytes each).
    fn small_entry_budget(per_shard: usize) -> usize {
        SHARDS * per_shard * (ENTRY_OVERHEAD + 8)
    }

    /// Keys (as strings) that all land in one shard, for deterministic
    /// LRU ordering tests.
    fn colliding_keys(n: usize) -> Vec<Vec<u8>> {
        // Shard routing depends only on the shard count; any
        // default-config cache reproduces the routing under test.
        let router = ResultCache::with_budget(1);
        let target = router.shard_index(fnv1a(b"k0"));
        let mut keys = Vec::new();
        for i in 0u32.. {
            let key = format!("k{i}").into_bytes();
            if router.shard_index(fnv1a(&key)) == target {
                keys.push(key);
                if keys.len() == n {
                    return keys;
                }
            }
        }
        unreachable!()
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325); // offset basis
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn tagged_u64s_do_not_concatenate() {
        let mut a = KeyBuilder::default();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = KeyBuilder::default();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = ResultCache::with_budget(1 << 20);
        assert!(cache.get(b"k42").is_none());
        assert!(cache.insert(b"k42", "payload".into(), 0));
        assert_eq!(cache.get(b"k42").as_deref(), Some("payload"));
        assert!(cache.insert(b"k42", "updated".into(), 0));
        assert_eq!(cache.get(b"k42").as_deref(), Some("updated"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn digest_collisions_do_not_alias_entries() {
        // Force two *different* keys into the same hash bucket by
        // driving the shard directly with an identical digest: the
        // byte comparison must keep them apart.
        let budget = 8 * (ENTRY_OVERHEAD + 16);
        let mut shard = Shard::new();
        shard.insert(7, b"alpha", "va".into(), 0, NO_EXPIRY, budget);
        shard.insert(7, b"beta", "vb".into(), 0, NO_EXPIRY, budget);
        assert!(matches!(shard.get(7, b"alpha", 0), Lookup::Hit(v) if v == "va"));
        assert!(matches!(shard.get(7, b"beta", 0), Lookup::Hit(v) if v == "vb"));
        assert!(matches!(shard.get(7, b"gamma", 0), Lookup::Miss));
        assert_eq!(shard.len(), 2);

        // Evicting one colliding entry must leave the other reachable.
        let budget = 2 * (ENTRY_OVERHEAD + 16);
        let mut shard = Shard::new();
        shard.insert(7, b"alpha", "va".into(), 0, NO_EXPIRY, budget);
        shard.insert(7, b"beta", "vb".into(), 0, NO_EXPIRY, budget);
        shard.insert(9, b"gamma", "vc".into(), 0, NO_EXPIRY, budget); // evicts LRU "alpha"
        assert!(matches!(shard.get(7, b"alpha", 0), Lookup::Miss));
        assert!(matches!(shard.get(7, b"beta", 0), Lookup::Hit(v) if v == "vb"));
        assert!(matches!(shard.get(9, b"gamma", 0), Lookup::Hit(v) if v == "vc"));
    }

    #[test]
    fn byte_budget_evicts_in_lru_order() {
        // Room for two small entries per shard.
        let cache = ResultCache::with_budget(small_entry_budget(2));
        let keys = colliding_keys(3);
        cache.insert(&keys[0], "a".into(), 0);
        cache.insert(&keys[1], "b".into(), 0);
        let _ = cache.get(&keys[0]); // refresh key 0, key 1 becomes LRU
        cache.insert(&keys[2], "c".into(), 0); // evicts key 1
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[1]).is_none(), "LRU entry must go first");
        assert!(cache.get(&keys[2]).is_some());
    }

    #[test]
    fn large_value_evicts_as_many_entries_as_it_needs() {
        let per_shard = 4 * (ENTRY_OVERHEAD + 16);
        let cache = ResultCache::new(CacheConfig {
            budget_bytes: SHARDS * per_shard,
            ttl: None,
            max_entry_bytes: per_shard,
            shards: SHARDS,
        });
        let keys = colliding_keys(4);
        for key in &keys[..3] {
            cache.insert(key, "small".into(), 0);
        }
        // One value sized to claim the whole shard budget: all three
        // residents must be evicted to admit it.
        let big = "x".repeat(per_shard - ENTRY_OVERHEAD - keys[3].len());
        assert!(cache.insert(&keys[3], big.clone(), 0));
        assert_eq!(cache.get(&keys[3]).as_deref(), Some(big.as_str()));
        for key in &keys[..3] {
            assert!(cache.get(key).is_none(), "evicted to make room");
        }
        assert!(cache.bytes_used() <= cache.budget_bytes());
    }

    #[test]
    fn bytes_never_exceed_budget_under_churn() {
        let budget = small_entry_budget(4);
        let cache = ResultCache::with_budget(budget);
        for i in 0..10_000u64 {
            cache.insert(
                format!("key-{i}").as_bytes(),
                format!("value-{}", i % 977),
                i % 7,
            );
            if i % 97 == 0 {
                assert!(cache.bytes_used() <= budget, "budget breached at {i}");
            }
        }
        assert!(cache.bytes_used() <= budget);
        assert!(!cache.is_empty());
    }

    #[test]
    fn oversized_entries_are_rejected_not_cached() {
        let cache = ResultCache::new(CacheConfig {
            budget_bytes: 1 << 20,
            ttl: None,
            max_entry_bytes: 1024,
            shards: SHARDS,
        });
        let big = "x".repeat(2048);
        assert!(!cache.insert(b"big", big, 0));
        assert!(cache.get(b"big").is_none());
        assert!(cache.is_empty());

        // The same value is admitted when it was expensive to compute.
        let big = "x".repeat(2048);
        assert!(cache.insert(b"big", big, COSTLY_WORK_UNITS));
        assert!(cache.get(b"big").is_some());

        // But even a costly response respects the relaxed 4× cap.
        let huge = "x".repeat(5000);
        assert!(!cache.insert(b"huge", huge, COSTLY_WORK_UNITS));
        assert!(cache.get(b"huge").is_none());
    }

    #[test]
    fn entry_larger_than_shard_budget_is_never_admitted() {
        // max_entry_bytes is clamped to the per-shard budget, so an
        // entry that could never fit is rejected instead of thrashing.
        let cache = ResultCache::new(CacheConfig {
            budget_bytes: SHARDS * 256,
            ttl: None,
            max_entry_bytes: usize::MAX,
            shards: SHARDS,
        });
        assert!(!cache.insert(b"k", "x".repeat(512), COSTLY_WORK_UNITS));
        assert!(cache.is_empty());
    }

    #[test]
    fn ttl_expires_exactly_at_the_boundary() {
        let cache = ResultCache::new(CacheConfig {
            budget_bytes: 1 << 20,
            ttl: Some(Duration::from_millis(50)),
            max_entry_bytes: 1 << 16,
            shards: SHARDS,
        });
        cache.insert(b"k", "v".into(), 0);
        cache.advance(Duration::from_millis(49));
        assert_eq!(cache.get(b"k").as_deref(), Some("v"), "one ms early: hit");
        cache.advance(Duration::from_millis(1));
        assert!(cache.get(b"k").is_none(), "deadline reached: miss");
        assert!(cache.is_empty(), "expired entry is removed on access");

        // A fresh insert under the same key starts a new lifetime.
        cache.insert(b"k", "v2".into(), 0);
        assert_eq!(cache.get(b"k").as_deref(), Some("v2"));
    }

    #[test]
    fn no_ttl_means_entries_outlive_any_clock_advance() {
        let cache = ResultCache::with_budget(1 << 20);
        cache.insert(b"k", "v".into(), 0);
        cache.advance(Duration::from_secs(1 << 30));
        assert_eq!(cache.get(b"k").as_deref(), Some("v"));
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = ResultCache::with_budget(0);
        assert!(!cache.insert(b"x", "x".into(), 0));
        assert!(cache.get(b"x").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn dump_load_round_trips_entries_and_recency() {
        let dir = std::env::temp_dir().join(format!("tgp-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round-trip.cache");

        let cache = ResultCache::with_budget(1 << 20);
        for i in 0..20u64 {
            cache.insert(format!("key-{i}").as_bytes(), format!("value-{i}"), i);
        }
        cache.dump(&path).unwrap();

        let restored = ResultCache::with_budget(1 << 20);
        assert_eq!(restored.load(&path).unwrap(), 20);
        for i in 0..20u64 {
            assert_eq!(
                restored.get(format!("key-{i}").as_bytes()).as_deref(),
                Some(format!("value-{i}").as_str())
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dump_skips_expired_and_preserves_remaining_ttl() {
        let dir = std::env::temp_dir().join(format!("tgp-cache-ttl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ttl.cache");

        let cache = ResultCache::new(CacheConfig {
            budget_bytes: 1 << 20,
            ttl: Some(Duration::from_millis(100)),
            max_entry_bytes: 1 << 16,
            shards: SHARDS,
        });
        cache.insert(b"doomed", "v".into(), 0);
        cache.advance(Duration::from_millis(60));
        cache.insert(b"fresh", "v".into(), 0);
        cache.advance(Duration::from_millis(50)); // "doomed" is now past its deadline
        cache.dump(&path).unwrap();

        let restored = ResultCache::with_budget(1 << 20);
        assert_eq!(restored.load(&path).unwrap(), 1, "expired entry not dumped");
        assert_eq!(restored.get(b"fresh").as_deref(), Some("v"));
        // "fresh" had 50ms left at dump time; it must still expire.
        restored.advance(Duration::from_millis(50));
        assert!(restored.get(b"fresh").is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_cache_files_are_rejected_without_panicking() {
        let dir = std::env::temp_dir().join(format!("tgp-cache-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.cache");

        let cache = ResultCache::with_budget(1 << 20);
        cache.insert(b"key", "value".into(), 0);
        cache.dump(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("empty", Vec::new()),
            ("truncated header", good[..16].to_vec()),
            ("bad magic", {
                let mut bad = good.clone();
                bad[0] ^= 0xff;
                bad
            }),
            ("future version", {
                let mut bad = good.clone();
                bad[8..16].copy_from_slice(&99u64.to_le_bytes());
                bad
            }),
            ("flipped payload byte", {
                let mut bad = good.clone();
                let last = bad.len() - 1;
                bad[last] ^= 0x01;
                bad
            }),
            ("truncated mid-entry", {
                let mut bad = good[..good.len() - 3].to_vec();
                // Re-checksum so only the truncation is at fault.
                let sum = fnv1a(&bad[DUMP_HEADER_BYTES..]);
                bad[24..32].copy_from_slice(&sum.to_le_bytes());
                bad
            }),
            ("count larger than payload", {
                let mut bad = good.clone();
                bad[16..24].copy_from_slice(&1_000_000u64.to_le_bytes());
                bad
            }),
            ("trailing bytes", {
                let mut bad = good.clone();
                bad.push(0);
                let sum = fnv1a(&bad[DUMP_HEADER_BYTES..]);
                bad[24..32].copy_from_slice(&sum.to_le_bytes());
                bad
            }),
        ];
        for (what, bytes) in cases {
            std::fs::write(&path, &bytes).unwrap();
            let fresh = ResultCache::with_budget(1 << 20);
            let err = fresh.load(&path).expect_err(what);
            assert!(!err.is_empty(), "{what}: error must describe the reject");
            assert!(fresh.is_empty(), "{what}: nothing may be partially loaded");
        }
        let missing = dir.join("does-not-exist.cache");
        assert!(ResultCache::with_budget(1 << 20).load(&missing).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_respects_the_admission_guard() {
        let dir = std::env::temp_dir().join(format!("tgp-cache-admit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("admit.cache");

        // Dump from a roomy cache, load into a tight one.
        let roomy = ResultCache::with_budget(1 << 20);
        roomy.insert(b"small", "v".into(), 0);
        roomy.insert(b"large", "x".repeat(4000), 0);
        roomy.dump(&path).unwrap();

        let tight = ResultCache::new(CacheConfig {
            budget_bytes: 1 << 20,
            ttl: None,
            max_entry_bytes: 1024,
            shards: SHARDS,
        });
        assert_eq!(tight.load(&path).unwrap(), 1, "oversized entry refused");
        assert!(tight.get(b"small").is_some());
        assert!(tight.get(b"large").is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn generation_tracks_mutations() {
        let cache = ResultCache::with_budget(1 << 20);
        let g0 = cache.generation();
        cache.insert(b"k", "v".into(), 0);
        assert!(cache.generation() > g0);
        let g1 = cache.generation();
        let _ = cache.get(b"k"); // a plain hit is not a mutation
        assert_eq!(cache.generation(), g1);
    }

    #[test]
    fn metrics_render_all_series() {
        let cache = ResultCache::with_budget(1 << 20);
        cache.insert(b"k", "v".into(), 0);
        let mut out = String::new();
        cache.render_metrics(&mut out);
        for series in [
            "tgp_cache_entries 1",
            "tgp_cache_bytes_used",
            "tgp_cache_bytes_budget 1048576",
            "tgp_cache_journal_bytes 0",
            "tgp_cache_evicted_total 0",
            "tgp_cache_rejected_oversize_total 0",
            "tgp_cache_expired_total 0",
            "tgp_cache_warm_loaded_total 0",
        ] {
            assert!(out.contains(series), "missing {series} in:\n{out}");
        }
    }

    #[test]
    fn journal_persists_inserts_across_attach_cycles() {
        let dir = std::env::temp_dir().join(format!("tgp-cache-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("attach.cachejournal");
        let _ = std::fs::remove_file(&path);

        let cache = ResultCache::with_budget(1 << 20);
        let report = cache.attach_journal(&path).unwrap();
        assert_eq!(
            report,
            AttachReport {
                admitted: 0,
                truncated: false,
                migrated: false
            }
        );
        for i in 0..10u64 {
            cache.insert(format!("key-{i}").as_bytes(), format!("value-{i}"), i);
        }
        cache.insert(b"key-3", "updated".into(), 3);
        drop(cache);

        let restored = ResultCache::with_budget(1 << 20);
        let report = restored.attach_journal(&path).unwrap();
        assert_eq!(report.admitted, 11, "log of inserts: every append replays");
        assert!(!report.truncated);
        assert!(!report.migrated);
        assert_eq!(restored.len(), 10, "later insert under the same key wins");
        assert_eq!(restored.get(b"key-3").as_deref(), Some("updated"));
        for i in [0u64, 9] {
            assert_eq!(
                restored.get(format!("key-{i}").as_bytes()).as_deref(),
                Some(format!("value-{i}").as_str())
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_torn_tail_replays_prefix_and_resumes() {
        let dir = std::env::temp_dir().join(format!("tgp-cache-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.cachejournal");
        let _ = std::fs::remove_file(&path);

        let cache = ResultCache::with_budget(1 << 20);
        cache.attach_journal(&path).unwrap();
        cache.insert(b"intact", "v1".into(), 0);
        cache.insert(b"torn", "v2".into(), 0);
        drop(cache);
        // Tear the last record mid-payload, as kill -9 mid-write would.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 2]).unwrap();

        let restored = ResultCache::with_budget(1 << 20);
        let report = restored.attach_journal(&path).unwrap();
        assert_eq!(report.admitted, 1);
        assert!(report.truncated);
        assert_eq!(restored.get(b"intact").as_deref(), Some("v1"));
        assert!(restored.get(b"torn").is_none());

        // Appends resume cleanly after the trim.
        restored.insert(b"after", "v3".into(), 0);
        let again = ResultCache::with_budget(1 << 20);
        assert_eq!(again.attach_journal(&path).unwrap().admitted, 2);
        assert_eq!(again.get(b"after").as_deref(), Some("v3"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_dump_migrates_to_journal_on_attach() {
        let dir = std::env::temp_dir().join(format!("tgp-cache-migrate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.cache");

        let old = ResultCache::with_budget(1 << 20);
        old.insert(b"carried", "v".into(), 0);
        old.dump(&path).unwrap();

        let cache = ResultCache::with_budget(1 << 20);
        let report = cache.attach_journal(&path).unwrap();
        assert_eq!(report.admitted, 1);
        assert!(report.migrated);
        assert_eq!(cache.get(b"carried").as_deref(), Some("v"));
        cache.insert(b"new", "w".into(), 0);
        drop(cache);

        // The file is now a journal: reattach replays both entries.
        let restored = ResultCache::with_budget(1 << 20);
        let report = restored.attach_journal(&path).unwrap();
        assert!(!report.migrated, "already journal form");
        assert_eq!(report.admitted, 2);
        assert_eq!(restored.get(b"new").as_deref(), Some("w"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_fails_attach_and_is_left_untouched() {
        let dir = std::env::temp_dir().join(format!("tgp-cache-foreign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.bin");
        let original = b"operator data that is not ours, well past sixteen bytes".to_vec();
        std::fs::write(&path, &original).unwrap();

        let cache = ResultCache::with_budget(1 << 20);
        assert!(cache.attach_journal(&path).is_err());
        assert!(cache.is_empty());
        assert_eq!(std::fs::read(&path).unwrap(), original, "never overwritten");
        // The cache still works memory-only after the failed attach.
        assert!(cache.insert(b"k", "v".into(), 0));
        assert!(cache.journal_len().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_shrinks_the_journal_and_keeps_entries() {
        let dir = std::env::temp_dir().join(format!("tgp-cache-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.cachejournal");
        let _ = std::fs::remove_file(&path);

        let cache = ResultCache::with_budget(1 << 20);
        cache.attach_journal(&path).unwrap();
        // Re-insert one key many times: memory holds one entry, the
        // log holds every insert.
        let filler = "x".repeat(1024);
        for _ in 0..256 {
            cache.insert(b"hot", filler.clone(), 0);
        }
        assert!(cache.should_compact(), "log far exceeds live bytes");
        let before = cache.journal_len().unwrap();
        cache.compact_journal().unwrap();
        let after = cache.journal_len().unwrap();
        assert!(after < before, "compaction shrank {before} -> {after}");
        assert!(!cache.should_compact());

        let restored = ResultCache::with_budget(1 << 20);
        assert_eq!(restored.attach_journal(&path).unwrap().admitted, 1);
        assert_eq!(restored.get(b"hot").as_deref(), Some(filler.as_str()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_preserves_remaining_ttl_across_attach() {
        let dir = std::env::temp_dir().join(format!("tgp-cache-jttl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ttl.cachejournal");
        let _ = std::fs::remove_file(&path);

        let cache = ResultCache::new(CacheConfig {
            budget_bytes: 1 << 20,
            ttl: Some(Duration::from_millis(100)),
            max_entry_bytes: 1 << 16,
            shards: SHARDS,
        });
        cache.attach_journal(&path).unwrap();
        cache.insert(b"k", "v".into(), 0);
        drop(cache);

        let restored = ResultCache::new(CacheConfig {
            budget_bytes: 1 << 20,
            ttl: Some(Duration::from_millis(100)),
            max_entry_bytes: 1 << 16,
            shards: SHARDS,
        });
        restored.attach_journal(&path).unwrap();
        assert_eq!(restored.get(b"k").as_deref(), Some("v"));
        restored.advance(Duration::from_millis(100));
        assert!(restored.get(b"k").is_none(), "replayed TTL still expires");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let budget = small_entry_budget(16);
        let cache = Arc::new(ResultCache::with_budget(budget));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let key = format!("key-{}", (t * 1_000 + i) % 300);
                        if i % 3 == 0 {
                            cache.insert(key.as_bytes(), format!("{t}:{i}"), i);
                        } else {
                            let _ = cache.get(key.as_bytes());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.bytes_used() <= budget);
    }
}
