//! A load generator for the partition service, closed- or open-loop.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--clients N] [--connections N] [--seconds S]
//!         [--timeout SECS] [--nodes N] [--distinct D]
//!         [--mix chain|tree|simulate|session|adversarial|outofcore]
//!         [--deadline-ms MS] [--huge-nodes N] [--rate RPS] [--sweep MIN..MAX]
//!         [--sweep-loops MIN..MAX] [--verify-addr HOST:PORT]
//!         [--strict] [--latency-budget MS] [--p999-budget MS]
//! ```
//!
//! Closed-loop (default): N client threads, each holding one keep-alive
//! connection and issuing requests back-to-back — measures capacity.
//!
//! `--connections N` opens N persistent keep-alive connections (default:
//! one per client thread). With N much larger than the server's
//! `--workers`, this is the §SRV-EPOLL scenario: a thread-per-connection
//! server pins a worker per connection and starves the rest, while the
//! epoll front-end keeps every connection served. Each connection slot
//! counts the requests it completed; slots that finish the run without
//! a single response other than shed 503s are reported as **starved**
//! (a slot that only ever gets shed received no service), and
//! `--strict` fails on any starvation.
//!
//! Open-loop (`--rate`): requests are launched on a fixed schedule
//! spread across the clients regardless of how fast replies come back —
//! measures latency at a controlled offered load. Latency is taken from
//! each request's *scheduled* start time, so a slow server's queueing
//! delay is charged to it (no coordinated omission); the report prints
//! the achieved rate so a saturated run is visible.
//!
//! `--distinct` controls how many distinct request bodies the clients
//! cycle through: 1 measures the pure cache-hit path, a large value
//! measures solver throughput.
//!
//! `--sweep MIN..MAX` replaces the random population with one fixed
//! chain partitioned under every bound in the inclusive range — the
//! schedule-tuning workload the result cache is built for. Repeating a
//! sweep (or restarting a `--cache-file` server) hits warm entries.
//!
//! `--sweep-loops MIN..MAX` measures multi-loop scaling instead of
//! hitting `--addr`: for each loop count in the range it starts an
//! embedded epoll server (`ServerConfig { loops, .. }`) on an
//! ephemeral port, runs the closed-loop chain workload against it,
//! and reports throughput and p99 per point plus the last/first
//! scaling factor (EXPERIMENTS.md §SRV-SHARD). `--strict` fails the
//! process if any point starved a connection or answered a non-shed
//! 5xx.
//!
//! `--mix` picks the request population:
//!
//! * `chain` (default) — `bandwidth` partitions of random chains.
//! * `tree` — tree objectives (`bottleneck`, `procmin`, `compose`)
//!   round-robin over random caterpillar trees.
//! * `simulate` — `/v1/simulate` pipeline replays of random chains.
//! * `adversarial` — the tail-latency gauntlet: 99% small chains, 1%
//!   huge chains (`--huge-nodes`, default 1 000 000), every request
//!   carrying an `x-deadline-ms` header (`--deadline-ms`, default 50).
//!   The huge solves must be shed or cancelled by the deadline
//!   machinery instead of wedging a worker, so 504
//!   `deadline_exceeded` responses are *intended* here and tallied as
//!   deadline drops, not failures. The report prints **goodput**
//!   (200s/s) and small-request latency separately from the huge
//!   requests; `--p999-budget MS` turns the small-request p999 into a
//!   `--strict` gate. Run the server with a raised `--max-body-bytes`
//!   so the huge bodies are admitted at all.
//! * `session` — each connection registers a resident chain
//!   (`POST /v1/graphs`), then loops: apply a 16-edit batch
//!   (`PATCH /v1/graphs/<id>`) and re-partition
//!   (`POST /v1/graphs/<id>/partition`). The `x-tgp-solve` response
//!   header splits client-side re-solve latency into warm and cold
//!   series in the report. Each client mirrors its edits locally, so
//!   under `--strict` every warm re-solve is verified byte-for-byte
//!   against a stateless cold `/v1/partition` of the same edited
//!   graph; any divergence fails the run.
//! * `outofcore` — huge-graph uploads: each connection cycles its own
//!   distinct set of large chains (`--nodes`) through `/v1/partition`,
//!   so its first pass is cold — against a server whose
//!   `--graph-spill-bytes` is at or below the body size, the upload
//!   streams into spill storage and ingests into disk-backed flat
//!   arrays — and repeats are warm result-cache hits; the report splits
//!   the two. Under `--strict` every cold (spilled) solve is
//!   byte-compared against the same request answered by an *in-RAM
//!   control* server (`--verify-addr`: the same binary with
//!   `--graph-spill-bytes` above the body size); any divergence fails
//!   the run. Raise the spill server's `--max-body-bytes` above the
//!   rendered body size or the uploads are refused with 413.
//!
//! `--strict` exits 1 when any response was a 5xx other than a 503
//! shed or an intended deadline 504 (for CI smoke runs, where sheds
//! under deliberate overload are the server working as designed but
//! anything else is a bug), when any connection starved, when any
//! session warm re-solve differed from its cold verification, when any
//! non-200 body fails to parse as a v2 error envelope with a stable
//! `code` (`tgp_service::envelope`), or when a latency budget
//! (`--latency-budget MS` p99, `--p999-budget MS` p999) is exceeded.
//!
//! Latency is tallied in the same log-linear histogram the server
//! exports under `/metrics` (`tgp-obs`), so quantiles cost constant
//! memory and p50/p90/p99/p999 carry at most 12.5% bucket error.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tgp_graph::json::Value;
use tgp_obs::Histogram;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    Chain,
    Tree,
    Simulate,
    Session,
    Adversarial,
    OutOfCore,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Chain => "chain",
            Mix::Tree => "tree",
            Mix::Simulate => "simulate",
            Mix::Session => "session",
            Mix::Adversarial => "adversarial",
            Mix::OutOfCore => "outofcore",
        }
    }
}

/// In the adversarial mix, one request in this many is huge.
const HUGE_EVERY: usize = 100;

struct Config {
    addr: String,
    clients: usize,
    /// Persistent keep-alive connections to hold open; defaults to one
    /// per client thread.
    connections: Option<usize>,
    seconds: u64,
    /// Client-side read timeout per response.
    timeout: Duration,
    nodes: usize,
    distinct: usize,
    mix: Mix,
    /// Open-loop offered load in requests/second; `None` is closed-loop.
    rate: Option<f64>,
    /// Bound-sweep range (inclusive); replaces the `--distinct` bodies.
    sweep: Option<(u64, u64)>,
    /// Loop-count sweep (inclusive): for each count, start an embedded
    /// epoll server with that many event loops on an ephemeral port,
    /// run the chain workload against it, and report throughput + p99
    /// per point. Ignores `--addr` (the target is in-process).
    sweep_loops: Option<(usize, usize)>,
    strict: bool,
    /// With `--strict`, fail the run when client-side p99 latency
    /// exceeds this budget.
    latency_budget: Option<Duration>,
    /// With `--strict`, fail the run when small-request p999 latency
    /// exceeds this budget (the adversarial-mix tail gate).
    p999_budget: Option<Duration>,
    /// Send an `x-deadline-ms` header with this value on every request.
    /// Defaults to 50 in the adversarial mix, unset elsewhere.
    deadline_ms: Option<u64>,
    /// Node count of the adversarial mix's huge chains.
    huge_nodes: usize,
    /// Out-of-core mix: address of the in-RAM control server that
    /// `--strict` byte-compares every spilled solve against. It must be
    /// a *separate* server (with `--graph-spill-bytes` above the body
    /// size) because a re-ask of the spill server would be answered
    /// from its result cache — the same bytes, not an independent
    /// in-RAM recompute.
    verify_addr: Option<String>,
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config {
        addr: "127.0.0.1:7070".into(),
        clients: 8,
        connections: None,
        seconds: 5,
        timeout: Duration::from_secs(10),
        nodes: 64,
        distinct: 16,
        mix: Mix::Chain,
        rate: None,
        sweep: None,
        sweep_loops: None,
        strict: false,
        latency_budget: None,
        p999_budget: None,
        deadline_ms: None,
        huge_nodes: 1_000_000,
        verify_addr: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--clients" => {
                config.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--connections" => {
                config.connections = Some(
                    value("--connections")?
                        .parse()
                        .map_err(|e| format!("--connections: {e}"))?,
                )
            }
            "--seconds" => {
                config.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?
            }
            "--timeout" => {
                let secs: u64 = value("--timeout")?
                    .parse()
                    .map_err(|e| format!("--timeout: {e}"))?;
                if secs == 0 {
                    return Err("--timeout must be at least 1 second".into());
                }
                config.timeout = Duration::from_secs(secs);
            }
            "--nodes" => {
                config.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--distinct" => {
                config.distinct = value("--distinct")?
                    .parse()
                    .map_err(|e| format!("--distinct: {e}"))?
            }
            "--mix" => {
                config.mix = match value("--mix")?.as_str() {
                    "chain" => Mix::Chain,
                    "tree" => Mix::Tree,
                    "simulate" => Mix::Simulate,
                    "session" => Mix::Session,
                    "adversarial" => Mix::Adversarial,
                    "outofcore" => Mix::OutOfCore,
                    other => {
                        return Err(format!(
                            "--mix must be chain, tree, simulate, session, adversarial or \
                             outofcore, got {other:?}"
                        ))
                    }
                }
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                if ms == 0 {
                    return Err("--deadline-ms must be at least 1 ms".into());
                }
                config.deadline_ms = Some(ms);
            }
            "--huge-nodes" => {
                config.huge_nodes = value("--huge-nodes")?
                    .parse()
                    .map_err(|e| format!("--huge-nodes: {e}"))?;
                if config.huge_nodes < 2 {
                    return Err("--huge-nodes must be at least 2".into());
                }
            }
            "--rate" => {
                let rate: f64 = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err("--rate must be a positive number".into());
                }
                config.rate = Some(rate);
            }
            "--sweep" => {
                let raw = value("--sweep")?;
                let (lo, hi) = raw
                    .split_once("..")
                    .ok_or_else(|| format!("--sweep expects MIN..MAX, got {raw:?}"))?;
                let lo: u64 = lo.trim().parse().map_err(|e| format!("--sweep min: {e}"))?;
                let hi: u64 = hi.trim().parse().map_err(|e| format!("--sweep max: {e}"))?;
                if lo > hi {
                    return Err(format!("--sweep: {lo} > {hi}"));
                }
                config.sweep = Some((lo, hi));
            }
            "--sweep-loops" => {
                let raw = value("--sweep-loops")?;
                let (lo, hi) = raw
                    .split_once("..")
                    .ok_or_else(|| format!("--sweep-loops expects MIN..MAX, got {raw:?}"))?;
                let lo: usize = lo
                    .trim()
                    .parse()
                    .map_err(|e| format!("--sweep-loops min: {e}"))?;
                let hi: usize = hi
                    .trim()
                    .parse()
                    .map_err(|e| format!("--sweep-loops max: {e}"))?;
                if lo == 0 || lo > hi {
                    return Err(format!("--sweep-loops: bad range {lo}..{hi}"));
                }
                config.sweep_loops = Some((lo, hi));
            }
            "--verify-addr" => config.verify_addr = Some(value("--verify-addr")?),
            "--strict" => config.strict = true,
            "--latency-budget" => {
                let ms: u64 = value("--latency-budget")?
                    .parse()
                    .map_err(|e| format!("--latency-budget: {e}"))?;
                if ms == 0 {
                    return Err("--latency-budget must be at least 1 ms".into());
                }
                config.latency_budget = Some(Duration::from_millis(ms));
            }
            "--p999-budget" => {
                let ms: u64 = value("--p999-budget")?
                    .parse()
                    .map_err(|e| format!("--p999-budget: {e}"))?;
                if ms == 0 {
                    return Err("--p999-budget must be at least 1 ms".into());
                }
                config.p999_budget = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--addr HOST:PORT] [--clients N] [--connections N] \
                     [--seconds S] [--timeout SECS] [--nodes N] [--distinct D] \
                     [--mix chain|tree|simulate|session|adversarial|outofcore] \
                     [--deadline-ms MS] [--huge-nodes N] [--rate RPS] [--sweep MIN..MAX] \
                     [--sweep-loops MIN..MAX] [--verify-addr HOST:PORT] \
                     [--strict] [--latency-budget MS] [--p999-budget MS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.clients == 0 || config.distinct == 0 || config.nodes < 2 {
        return Err("--clients and --distinct must be > 0, --nodes >= 2".into());
    }
    if config.connections == Some(0) {
        return Err("--connections must be > 0".into());
    }
    if config.sweep.is_some() && config.mix != Mix::Chain {
        return Err("--sweep only applies to the chain mix".into());
    }
    if config.sweep_loops.is_some() {
        if config.mix != Mix::Chain {
            return Err("--sweep-loops only applies to the chain mix".into());
        }
        if config.sweep.is_some() {
            return Err("--sweep-loops and --sweep are mutually exclusive".into());
        }
        if config.rate.is_some() {
            // Scaling is a saturation question; an open-loop schedule
            // would measure the schedule, not the server.
            return Err("--sweep-loops is closed-loop; drop --rate".into());
        }
    }
    if config.mix == Mix::Session && config.rate.is_some() {
        // A session iteration is several dependent requests (register,
        // patch, partition, verify); a fixed per-request schedule has
        // no meaningful phase to pin to.
        return Err("--rate does not apply to the session mix".into());
    }
    if config.mix == Mix::Adversarial && config.deadline_ms.is_none() {
        config.deadline_ms = Some(50);
    }
    if config.mix == Mix::OutOfCore {
        if config.rate.is_some() {
            // An out-of-core iteration is an upload plus (under
            // --strict) a dependent verification exchange; a fixed
            // per-request schedule has no meaningful phase to pin to.
            return Err("--rate does not apply to the outofcore mix".into());
        }
        if config.strict && config.verify_addr.is_none() {
            return Err(
                "--mix outofcore --strict needs --verify-addr pointing at an in-RAM \
                 control server (same binary, --graph-spill-bytes above the body size); \
                 re-asking the spill server would be answered from its result cache, \
                 not an independent recompute"
                    .into(),
            );
        }
    } else if config.verify_addr.is_some() {
        return Err("--verify-addr only applies to the outofcore mix".into());
    }
    Ok(config)
}

/// One pre-rendered request: target path plus JSON body.
struct RequestBody {
    path: &'static str,
    body: String,
}

fn chain_graph(nodes: usize, v: usize) -> String {
    let node_weights: Vec<String> = (0..nodes)
        .map(|i| ((i * 7 + v * 13) % 9 + 1).to_string())
        .collect();
    let edge_weights: Vec<String> = (0..nodes - 1)
        .map(|i| ((i * 5 + v * 3) % 17 + 1).to_string())
        .collect();
    format!(
        r#"{{"node_weights":[{}],"edge_weights":[{}]}}"#,
        node_weights.join(","),
        edge_weights.join(",")
    )
}

/// A deterministic caterpillar tree: node `i > 0` hangs off node
/// `i - 1 - (i % 3)`, giving some branching without needing an RNG.
fn tree_graph(nodes: usize, v: usize) -> String {
    let node_weights: Vec<String> = (0..nodes)
        .map(|i| ((i * 11 + v * 7) % 9 + 1).to_string())
        .collect();
    let edges: Vec<String> = (1..nodes)
        .map(|i| {
            let parent = i - 1 - (i % 3).min(i - 1);
            let weight = (i * 3 + v * 5) % 17 + 1;
            format!(r#"{{"a":{parent},"b":{i},"weight":{weight}}}"#)
        })
        .collect();
    format!(
        r#"{{"node_weights":[{}],"edges":[{}]}}"#,
        node_weights.join(","),
        edges.join(",")
    )
}

/// Builds `distinct` request bodies of `nodes` nodes each for the given
/// mix, deterministically varied so their cache keys differ.
fn request_bodies(mix: Mix, nodes: usize, distinct: usize) -> Vec<RequestBody> {
    (0..distinct)
        .map(|v| {
            // A bound around 4/3 of the mean node weight times a few
            // nodes keeps every instance feasible but non-trivial.
            let bound = 4 * nodes / 3;
            match mix {
                // The adversarial mix's 99% small requests are the
                // chain workload; its huge 1% is rendered separately.
                Mix::Chain | Mix::Adversarial => RequestBody {
                    path: "/v1/partition",
                    body: format!(
                        r#"{{"objective":"bandwidth","bound":{bound},"graph":{}}}"#,
                        chain_graph(nodes, v)
                    ),
                },
                Mix::Tree => {
                    let objective = ["bottleneck", "procmin", "compose"][v % 3];
                    RequestBody {
                        path: "/v1/partition",
                        body: format!(
                            r#"{{"objective":"{objective}","bound":{bound},"graph":{}}}"#,
                            tree_graph(nodes, v)
                        ),
                    }
                }
                Mix::Simulate => RequestBody {
                    path: "/v1/simulate",
                    body: format!(
                        r#"{{"bound":{bound},"items":{},"graph":{}}}"#,
                        50 + v % 50,
                        chain_graph(nodes, v)
                    ),
                },
                Mix::Session => unreachable!("session workers build their own requests"),
                Mix::OutOfCore => {
                    unreachable!("out-of-core workers build their own requests")
                }
            }
        })
        .collect()
}

/// One fixed chain under every bound in `lo..=hi` — each bound is a
/// distinct cache key, so repeating a sweep exercises the warm path.
/// Node weights are 1..=9, so any bound >= 9 is feasible; smaller
/// bounds exercise the 422 `infeasible` path, which is also a valid
/// thing to measure.
fn sweep_bodies(nodes: usize, lo: u64, hi: u64) -> Vec<RequestBody> {
    let graph = chain_graph(nodes, 0);
    (lo..=hi)
        .map(|bound| RequestBody {
            path: "/v1/partition",
            body: format!(r#"{{"objective":"bandwidth","bound":{bound},"graph":{graph}}}"#),
        })
        .collect()
}

/// A parsed HTTP response: status, the `x-tgp-solve` header when the
/// server sent one (`true` = warm), and the raw body bytes.
struct Response {
    status: u16,
    warm: Option<bool>,
    body: Vec<u8>,
}

/// One HTTP exchange on an existing keep-alive connection.
/// `extra_headers` is pre-rendered `name: value\r\n` lines (may be
/// empty) — how the adversarial mix attaches `x-deadline-ms`.
fn http_exchange(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    method: &str,
    path: &str,
    extra_headers: &str,
    body: &str,
) -> Result<Response, std::io::Error> {
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\ncontent-type: application/json\r\n{extra_headers}content-length: {}\r\n\r\n{body}",
        body.len(),
    )?;
    writer.flush()?;

    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;

    let mut content_length = 0usize;
    let mut warm = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
            })?;
        }
        if let Some(v) = lower.strip_prefix("x-tgp-solve:") {
            warm = Some(v.trim() == "warm");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Response { status, warm, body })
}

/// One POST exchange returning the full parsed response, so strict
/// runs can audit error bodies.
fn exchange(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    extra_headers: &str,
    path: &str,
    body: &str,
) -> Result<Response, std::io::Error> {
    http_exchange(reader, writer, "POST", path, extra_headers, body)
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank]
}

/// Per-client tallies, merged at the end. Latencies go into the same
/// log-linear histogram the server uses for `/metrics`, recorded in
/// microseconds — constant memory regardless of run length, quantile
/// error bounded at 12.5% by the bucket scheme.
#[derive(Default)]
struct Tally {
    latency: Histogram,
    responses: u64,
    transport_errors: u64,
    shed_503: u64,
    other_5xx: u64,
    non_200: u64,
    /// 200 responses — the numerator of goodput.
    ok_200: u64,
    /// 504s on requests that carried an `x-deadline-ms` header: the
    /// deadline machinery doing its job, not a server fault.
    deadline_504: u64,
    /// Non-200 bodies that failed to parse as a v2 error envelope with
    /// a stable code; any makes a `--strict` run fail.
    envelope_violations: u64,
    /// First envelope-violation diagnostic, for the failure message.
    envelope_example: Option<String>,
    /// Adversarial mix: the 1% huge requests, tallied apart so the
    /// small-request tail (`--p999-budget`) is not averaged away.
    huge_latency: Histogram,
    huge_sent: u64,
    /// Session mix only: re-solve latency split by the `x-tgp-solve`
    /// header, plus edit-batch and verification outcomes. The
    /// verification histogram times the `--strict` stateless cold
    /// solves — each is a full parse+solve of the same edited graph a
    /// warm re-solve just answered, so warm vs verify is the
    /// apples-to-apples cost of statelessness.
    warm_latency: Histogram,
    cold_latency: Histogram,
    verify_latency: Histogram,
    warm_solves: u64,
    cold_solves: u64,
    edit_batches: u64,
    version_conflicts: u64,
    verify_mismatches: u64,
}

impl Tally {
    /// Books one non-200 response: audits the body against the v2
    /// error envelope and classifies the status. `had_deadline` marks
    /// requests that carried an `x-deadline-ms` header, whose 504s are
    /// intended drops rather than server faults.
    fn note_error(&mut self, status: u16, body: &[u8], had_deadline: bool) {
        self.non_200 += 1;
        if let Err(e) = tgp_service::envelope::parse_envelope(body) {
            self.envelope_violations += 1;
            if self.envelope_example.is_none() {
                self.envelope_example = Some(format!("status {status}: {e}"));
            }
        }
        if status == 503 {
            self.shed_503 += 1;
        } else if status == 504 && had_deadline {
            self.deadline_504 += 1;
        } else if status >= 500 {
            self.other_5xx += 1;
        }
    }
}

/// The per-connection state of one resident-graph session: the server
/// id and version plus the client's mirror of the edited chain. The
/// mirror is what `--strict` solves statelessly to verify warm bodies.
struct SessionState {
    id: String,
    version: u64,
    node_weights: Vec<u64>,
    edge_weights: Vec<u64>,
}

impl SessionState {
    fn graph_json(&self) -> String {
        let nodes: Vec<String> = self.node_weights.iter().map(u64::to_string).collect();
        let edges: Vec<String> = self.edge_weights.iter().map(u64::to_string).collect();
        format!(
            r#"{{"node_weights":[{}],"edge_weights":[{}]}}"#,
            nodes.join(","),
            edges.join(",")
        )
    }
}

/// Pulls `"id"` and `"version"` out of a session-API response body.
fn id_and_version(body: &[u8]) -> Option<(String, u64)> {
    let value = Value::parse(std::str::from_utf8(body).ok()?).ok()?;
    let id = value.get("id")?.as_str()?.to_string();
    let version = value.get("version")?.as_u64()?;
    Some((id, version))
}

/// Edits per PATCH batch in the session mix — matches the §SESS
/// experiment shape.
const SESSION_BATCH: usize = 16;

/// The per-slot knobs of the session mix, plus the edit-batch counter
/// that survives reconnects so fresh sessions keep drawing new edits.
struct SessionSlot {
    nodes: usize,
    index: usize,
    strict: bool,
    tick: usize,
}

/// Drives one connection of the session mix until `stop`: register a
/// resident chain, then loop PATCH + re-partition, mirroring every
/// acked edit locally. Returns `Ok(())` to reconnect (transport error
/// or shed) and `Err(())` when the run is over.
#[allow(clippy::result_unit_err)]
fn session_loop(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    slot: &mut SessionSlot,
    stop: &AtomicBool,
    tally: &mut Tally,
) -> Result<(), ()> {
    let nodes = slot.nodes;
    let strict = slot.strict;
    let bound = 4 * nodes / 3;
    let partition_body = format!(r#"{{"objective":"lexicographic","bound":{bound}}}"#);
    // A failed or interrupted exchange leaves the server-side session
    // state unknowable from here, so every (re)entry starts fresh; the
    // previous resident, if any, is dropped first as budget hygiene.
    let mut session: Option<SessionState> = None;
    // One tally-updating exchange; maps transport errors and sheds to
    // a reconnect signal so the caller can re-dial.
    macro_rules! send {
        ($method:expr, $path:expr, $body:expr) => {{
            let started = Instant::now();
            match http_exchange(reader, writer, $method, $path, "", $body) {
                Ok(response) => {
                    tally.latency.record(started.elapsed().as_micros() as u64);
                    tally.responses += 1;
                    if response.status == 200 {
                        tally.ok_200 += 1;
                    } else {
                        tally.note_error(response.status, &response.body, false);
                        if response.status == 503 {
                            return Ok(());
                        }
                    }
                    (response, started)
                }
                Err(_) => {
                    tally.transport_errors += 1;
                    return Ok(());
                }
            }
        }};
    }
    while !stop.load(Ordering::Relaxed) {
        if session.is_none() {
            let node_weights: Vec<u64> = (0..nodes)
                .map(|i| ((i * 7 + slot.index * 13) % 9 + 1) as u64)
                .collect();
            // Edge weights span a wide range (hashed into 1..=2^24) so
            // the bottleneck candidates are dense in value but sparse
            // around any one optimum — the regime where a drift window
            // certifies in a couple of probes instead of degenerating
            // into the cold binary search.
            let edge_weights: Vec<u64> = (0..nodes - 1)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_add(slot.index as u64 * 0xA24B_AED5)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    h % (1 << 24) + 1
                })
                .collect();
            let mut fresh = SessionState {
                id: String::new(),
                version: 0,
                node_weights,
                edge_weights,
            };
            let body = format!(r#"{{"graph":{}}}"#, fresh.graph_json());
            let (response, _) = send!("POST", "/v1/graphs", &body);
            let Some((id, version)) = (response.status == 200)
                .then(|| id_and_version(&response.body))
                .flatten()
            else {
                // Registration refused (e.g. budget exceeded while
                // other slots hold residents): back off briefly.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            fresh.id = id;
            fresh.version = version;
            session = Some(fresh);
        }
        let state = session.as_mut().expect("session was just registered");

        // One batch of small-delta edge refinements — the schedule
        // tuning workload warm starts are built for: each edit nudges
        // a weight by at most 4, so the solver's drift window stays a
        // few dozen wide and the next re-solve certifies cheaply.
        // Applied to the local mirror only once the server acks the
        // new version.
        let pending: Vec<(usize, u64)> = (0..SESSION_BATCH)
            .map(|k| {
                let index = (slot.tick * 31 + k * 7 + slot.index) % state.edge_weights.len();
                let delta = ((slot.tick * 13 + k * 5) % 4 + 1) as u64;
                let old = state.edge_weights[index];
                let weight = if (slot.tick + k).is_multiple_of(2) {
                    old + delta
                } else {
                    old.saturating_sub(delta).max(1)
                };
                (index, weight)
            })
            .collect();
        slot.tick += 1;
        let edits: Vec<String> = pending
            .iter()
            .map(|(i, w)| format!(r#"{{"op":"edge_weight","index":{i},"weight":{w}}}"#))
            .collect();
        let patch = format!(
            r#"{{"version":{},"edits":[{}]}}"#,
            state.version,
            edits.join(",")
        );
        let path = format!("/v1/graphs/{}", state.id);
        let (response, _) = send!("PATCH", &path, &patch);
        match response.status {
            200 => {
                let Some((_, version)) = id_and_version(&response.body) else {
                    session = None;
                    continue;
                };
                state.version = version;
                for (index, weight) in pending {
                    state.edge_weights[index] = weight;
                }
                tally.edit_batches += 1;
            }
            409 => {
                // Nobody else writes this session, so a conflict means
                // our mirror is stale (lost ack); start over.
                tally.version_conflicts += 1;
                session = None;
                continue;
            }
            _ => {
                session = None;
                continue;
            }
        }

        // Re-partition the resident graph; the header says whether the
        // solver warm-started from the previous solve's window.
        let path = format!("/v1/graphs/{}/partition", state.id);
        let (response, started) = send!("POST", &path, &partition_body);
        if response.status != 200 {
            session = None;
            continue;
        }
        let warm = response.warm == Some(true);
        let elapsed = started.elapsed().as_micros() as u64;
        if warm {
            tally.warm_latency.record(elapsed);
            tally.warm_solves += 1;
        } else {
            tally.cold_latency.record(elapsed);
            tally.cold_solves += 1;
        }

        if strict && warm {
            // Verify the warm body against a stateless cold solve of
            // the mirrored graph: byte-identical or the run fails.
            let cold = format!(
                r#"{{"objective":"lexicographic","bound":{bound},"graph":{}}}"#,
                state.graph_json()
            );
            let (verification, verify_started) = send!("POST", "/v1/partition", &cold);
            tally
                .verify_latency
                .record(verify_started.elapsed().as_micros() as u64);
            if verification.status != 200 || verification.body != response.body {
                tally.verify_mismatches += 1;
            }
        }
    }
    Err(())
}

/// The per-slot knobs of the out-of-core mix, plus the upload counter
/// that survives reconnects so a re-dialed slot keeps its warm/cold
/// bookkeeping instead of re-counting repeats as cold.
struct OutOfCoreSlot {
    nodes: usize,
    distinct: usize,
    index: usize,
    strict: bool,
    verify_addr: Option<String>,
    timeout: Duration,
    sent: usize,
}

/// Dials a keep-alive connection and returns the buffered reader /
/// writer pair the exchange helpers expect.
fn connect_pair(addr: &str, timeout: Duration) -> Option<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let writer = stream.try_clone().ok()?;
    Some((BufReader::new(stream), writer))
}

/// Drives one connection of the out-of-core mix until `stop`: cycle the
/// slot's own `distinct` huge chains through `/v1/partition`, so the
/// first pass over the set is cold (spilled ingest + solve on a server
/// whose `--graph-spill-bytes` is at or below the body size) and every
/// repeat is a warm result-cache hit. Chain variants are slot-disjoint
/// (`index * distinct + i`), so a slot-local first send is server-cold
/// too. Under `--strict`, each cold solve is byte-compared against the
/// same request answered by the in-RAM control server at `verify_addr`.
/// Returns `Ok(())` to reconnect and `Err(())` when the run is over.
#[allow(clippy::result_unit_err)]
fn outofcore_loop(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    slot: &mut OutOfCoreSlot,
    stop: &AtomicBool,
    tally: &mut Tally,
) -> Result<(), ()> {
    let bound = 4 * slot.nodes / 3;
    // The verification connection is dialed lazily and re-dialed after
    // any transport error.
    let mut verify: Option<(BufReader<TcpStream>, TcpStream)> = None;
    while !stop.load(Ordering::Relaxed) {
        let i = slot.sent % slot.distinct;
        let cold = slot.sent < slot.distinct;
        let body = format!(
            r#"{{"objective":"bandwidth","bound":{bound},"graph":{}}}"#,
            chain_graph(slot.nodes, slot.index * slot.distinct + i)
        );
        let started = Instant::now();
        let response = match exchange(reader, writer, "", "/v1/partition", &body) {
            Ok(response) => response,
            Err(_) => {
                // The upload may or may not have been solved before the
                // connection died, so whether the retry is really cold
                // is unknowable; leaving `sent` alone keeps the counts
                // conservative (at most one mislabeled sample).
                tally.transport_errors += 1;
                return Ok(());
            }
        };
        slot.sent += 1;
        let micros = started.elapsed().as_micros() as u64;
        tally.latency.record(micros);
        tally.responses += 1;
        if response.status != 200 {
            tally.note_error(response.status, &response.body, false);
            if response.status == 503 {
                return Ok(());
            }
            continue;
        }
        tally.ok_200 += 1;
        if cold {
            tally.cold_latency.record(micros);
            tally.cold_solves += 1;
        } else {
            tally.warm_latency.record(micros);
            tally.warm_solves += 1;
        }

        // Cross-check every cold (spilled) solve against the in-RAM
        // control server, byte for byte.
        if slot.strict && cold {
            let Some(addr) = slot.verify_addr.as_deref() else {
                continue;
            };
            if verify.is_none() {
                verify = connect_pair(addr, slot.timeout);
            }
            let Some((verify_reader, verify_writer)) = verify.as_mut() else {
                tally.transport_errors += 1;
                continue;
            };
            let verify_started = Instant::now();
            match exchange(verify_reader, verify_writer, "", "/v1/partition", &body) {
                Ok(verification) => {
                    tally
                        .verify_latency
                        .record(verify_started.elapsed().as_micros() as u64);
                    if verification.status != 200 || verification.body != response.body {
                        tally.verify_mismatches += 1;
                    }
                }
                Err(_) => {
                    tally.transport_errors += 1;
                    verify = None;
                }
            }
        }
    }
    Err(())
}

/// One point of a `--sweep-loops` run.
struct LoopPoint {
    loops: usize,
    throughput: f64,
    p99_us: u64,
    starved: usize,
    other_5xx: u64,
    transport_errors: u64,
}

/// A lean closed-loop chain run against `addr`: `slots` persistent
/// connections hammer the body set for `seconds`, with the same
/// starvation accounting as the main path (a slot whose only responses
/// were shed 503s never got real work done).
fn closed_loop_run(
    addr: &str,
    slots: usize,
    seconds: u64,
    timeout: Duration,
    bodies: &Arc<Vec<RequestBody>>,
) -> LoopPoint {
    let stop = Arc::new(AtomicBool::new(false));
    let empty_header = Arc::new(String::new());
    let workers: Vec<_> = (0..slots)
        .map(|c| {
            let addr = addr.to_string();
            let bodies = Arc::clone(bodies);
            let stop = Arc::clone(&stop);
            let deadline_header = Arc::clone(&empty_header);
            std::thread::spawn(move || {
                let latency = Histogram::new();
                let mut served = 0u64;
                let mut shed = 0u64;
                let mut other_5xx = 0u64;
                let mut transport_errors = 0u64;
                let mut i = c;
                'reconnect: while !stop.load(Ordering::Relaxed) {
                    let Ok(stream) = TcpStream::connect(&addr) else {
                        transport_errors += 1;
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(timeout));
                    let Ok(mut writer) = stream.try_clone() else {
                        transport_errors += 1;
                        continue;
                    };
                    let mut reader = BufReader::new(stream);
                    while !stop.load(Ordering::Relaxed) {
                        let body = &bodies[i % bodies.len()];
                        i += 1;
                        let started = Instant::now();
                        match exchange(
                            &mut reader,
                            &mut writer,
                            &deadline_header,
                            body.path,
                            &body.body,
                        ) {
                            Ok(response) => {
                                latency.record(started.elapsed().as_micros() as u64);
                                match response.status {
                                    503 => {
                                        shed += 1;
                                        continue 'reconnect;
                                    }
                                    s if s >= 500 => other_5xx += 1,
                                    // 200 and 4xx both mean the solver
                                    // ran; the slot was served.
                                    _ => served += 1,
                                }
                            }
                            Err(_) => {
                                transport_errors += 1;
                                continue 'reconnect;
                            }
                        }
                    }
                }
                (latency, served, shed, other_5xx, transport_errors)
            })
        })
        .collect();

    let started = Instant::now();
    std::thread::sleep(Duration::from_secs(seconds));
    stop.store(true, Ordering::Relaxed);

    let latency = Histogram::new();
    let mut completed = 0u64;
    let mut starved = 0usize;
    let mut other_5xx = 0u64;
    let mut transport_errors = 0u64;
    for worker in workers {
        let (slot_latency, served, _shed, slot_5xx, slot_transport) =
            worker.join().expect("sweep client thread panicked");
        latency.merge(&slot_latency);
        completed += served + slot_5xx;
        if served == 0 {
            starved += 1;
        }
        other_5xx += slot_5xx;
        transport_errors += slot_transport;
    }
    let elapsed = started.elapsed().as_secs_f64();
    LoopPoint {
        loops: 0, // stamped by the caller
        throughput: completed as f64 / elapsed,
        p99_us: latency.quantile(0.99),
        starved,
        other_5xx,
        transport_errors,
    }
}

/// `--sweep-loops MIN..MAX`: for each loop count, start an embedded
/// epoll server on an ephemeral port with that many `SO_REUSEPORT`
/// event loops (worker count and everything else held constant), run
/// the closed-loop chain workload, and report throughput and p99 per
/// point plus the scaling factor of the last point over the first.
/// Under `--strict` the process exits 1 if any point starved a
/// connection slot or answered a non-shed 5xx.
fn sweep_loops_run(config: &Config, lo: usize, hi: usize) -> ! {
    use tgp_service::{IoMode, Server, ServerConfig};

    let bodies = Arc::new(request_bodies(Mix::Chain, config.nodes, config.distinct));
    let slots = config.connections.unwrap_or(config.clients).max(1);
    // Held constant across points so the only variable is the loop
    // count; sized to the machine so workers are not the bottleneck.
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .max(4);
    println!(
        "loadgen: sweeping --loops {lo}..{hi}, {slots} persistent connections x {}s per point \
         (embedded epoll server, {workers} workers, {} distinct chain bodies, {} nodes/graph)",
        config.seconds, config.distinct, config.nodes
    );

    let mut points: Vec<LoopPoint> = Vec::new();
    let mut failures = Vec::new();
    for loops in lo..=hi {
        let server_config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            io: IoMode::Epoll,
            loops,
            workers,
            queue_depth: 256,
            max_connections: 4096,
            ..ServerConfig::default()
        };
        let mut server = match Server::start(server_config) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("loadgen: --sweep-loops: starting the {loops}-loop server: {e}");
                std::process::exit(2);
            }
        };
        let addr = server.local_addr().to_string();
        // A short unmeasured warmup fills the result cache and settles
        // connection establishment out of the measured window.
        let _ = closed_loop_run(&addr, slots, 1, config.timeout, &bodies);
        let mut point = closed_loop_run(&addr, slots, config.seconds, config.timeout, &bodies);
        point.loops = loops;
        server.shutdown();
        println!(
            "loops={loops}: throughput {:.0} req/s, p99 {} us, {}/{} connections starved{}",
            point.throughput,
            point.p99_us,
            point.starved,
            slots,
            if point.other_5xx > 0 || point.transport_errors > 0 {
                format!(
                    " ({} non-shed 5xx, {} transport errors)",
                    point.other_5xx, point.transport_errors
                )
            } else {
                String::new()
            }
        );
        if point.starved > 0 {
            failures.push(format!(
                "loops={loops}: {} of {slots} connections starved",
                point.starved
            ));
        }
        if point.other_5xx > 0 {
            failures.push(format!(
                "loops={loops}: {} 5xx responses besides load sheds",
                point.other_5xx
            ));
        }
        points.push(point);
    }
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        if points.len() > 1 && first.throughput > 0.0 && first.p99_us > 0 {
            println!(
                "scaling:    {:.2}x throughput at loops={} vs loops={}, p99 {:.2}x",
                last.throughput / first.throughput,
                last.loops,
                first.loops,
                last.p99_us as f64 / first.p99_us as f64,
            );
        }
    }
    if config.strict && !failures.is_empty() {
        eprintln!("loadgen: --strict: {}", failures.join("; "));
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    if let Some((lo, hi)) = config.sweep_loops {
        sweep_loops_run(&config, lo, hi);
    }
    let bodies = Arc::new(match (config.sweep, config.mix) {
        (Some((lo, hi)), _) => sweep_bodies(config.nodes, lo, hi),
        // Session and out-of-core workers render their own requests.
        (None, Mix::Session | Mix::OutOfCore) => Vec::new(),
        (None, mix) => request_bodies(mix, config.nodes, config.distinct),
    });
    let stop = Arc::new(AtomicBool::new(false));
    // The adversarial mix's 1% huge request, rendered once and shared:
    // a chain large enough that solving it without deadline
    // enforcement would visibly stall a worker.
    let huge_body = Arc::new(if config.mix == Mix::Adversarial {
        let bound = 4 * config.huge_nodes / 3;
        format!(
            r#"{{"objective":"bandwidth","bound":{bound},"graph":{}}}"#,
            chain_graph(config.huge_nodes, 0)
        )
    } else {
        String::new()
    });
    // Pre-rendered x-deadline-ms header line for every request.
    let deadline_header = Arc::new(match config.deadline_ms {
        Some(ms) => format!("x-deadline-ms: {ms}\r\n"),
        None => String::new(),
    });

    let workload = match (config.sweep, config.mix) {
        (Some((lo, hi)), _) => format!("bound sweep {lo}..{hi} over one fixed chain"),
        (None, Mix::Session) => {
            format!("mix session, one resident graph per connection, {SESSION_BATCH}-edit batches")
        }
        (None, Mix::OutOfCore) => format!(
            "mix outofcore, {} huge uploads per connection cycled cold-then-warm{}",
            config.distinct,
            if config.verify_addr.is_some() {
                ", cold solves cross-checked in RAM"
            } else {
                ""
            }
        ),
        (None, Mix::Adversarial) => format!(
            "mix adversarial, {} distinct small bodies + 1/{HUGE_EVERY} huge ({} nodes), \
             {} ms deadlines",
            config.distinct,
            config.huge_nodes,
            config.deadline_ms.unwrap_or(50)
        ),
        (None, mix) => format!("mix {}, {} distinct bodies", mix.name(), config.distinct),
    };
    let pacing = match config.rate {
        Some(rate) => format!("open-loop at {rate} req/s"),
        None => "closed-loop".into(),
    };
    // One thread per connection slot; `--connections` decouples the
    // number of held connections from the default one-per-client.
    let slots = config.connections.unwrap_or(config.clients).max(1);
    println!(
        "loadgen: {slots} persistent connections x {}s against {} ({pacing}; {workload}; {} nodes/graph)",
        config.seconds, config.addr, config.nodes
    );

    // Open-loop: each slot fires every `slots / rate` seconds,
    // phase-shifted so the aggregate is a uniform `rate` req/s.
    let interval = config
        .rate
        .map(|rate| Duration::from_secs_f64(slots as f64 / rate));
    let base = Instant::now();
    let timeout = config.timeout;

    let mix = config.mix;
    let nodes = config.nodes;
    let distinct = config.distinct;
    let strict = config.strict;
    let verify_addr = config.verify_addr.clone();
    let workers: Vec<_> = (0..slots)
        .map(|c| {
            let addr = config.addr.clone();
            let verify_addr = verify_addr.clone();
            let bodies = Arc::clone(&bodies);
            let huge_body = Arc::clone(&huge_body);
            let deadline_header = Arc::clone(&deadline_header);
            let stop = Arc::clone(&stop);
            let offset = interval
                .map(|iv| iv.mul_f64(c as f64 / slots as f64))
                .unwrap_or(Duration::ZERO);
            std::thread::spawn(move || {
                let mut tally = Tally::default();
                let mut i = c; // de-phase clients across the body set
                let mut seq: u32 = 0; // open-loop tick counter
                let mut slot_state = SessionSlot {
                    nodes,
                    index: c,
                    strict,
                    tick: c,
                };
                let mut outofcore_state = OutOfCoreSlot {
                    nodes,
                    distinct,
                    index: c,
                    strict,
                    verify_addr,
                    timeout,
                    sent: 0,
                };
                'reconnect: while !stop.load(Ordering::Relaxed) {
                    let Ok(stream) = TcpStream::connect(&addr) else {
                        tally.transport_errors += 1;
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    };
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(timeout));
                    let Ok(writer) = stream.try_clone() else {
                        tally.transport_errors += 1;
                        continue;
                    };
                    let mut writer = writer;
                    let mut reader = BufReader::new(stream);
                    if mix == Mix::Session {
                        match session_loop(
                            &mut reader,
                            &mut writer,
                            &mut slot_state,
                            &stop,
                            &mut tally,
                        ) {
                            Ok(()) => continue 'reconnect, // re-dial
                            Err(()) => break 'reconnect,   // run is over
                        }
                    }
                    if mix == Mix::OutOfCore {
                        match outofcore_loop(
                            &mut reader,
                            &mut writer,
                            &mut outofcore_state,
                            &stop,
                            &mut tally,
                        ) {
                            Ok(()) => continue 'reconnect, // re-dial
                            Err(()) => break 'reconnect,   // run is over
                        }
                    }
                    while !stop.load(Ordering::Relaxed) {
                        // The adversarial mix slips a huge chain into
                        // every HUGE_EVERY-th slot tick; its latency
                        // is tallied apart so the small-request tail
                        // stays measurable.
                        let huge = mix == Mix::Adversarial && i % HUGE_EVERY == 0;
                        let (path, body) = if huge {
                            ("/v1/partition", huge_body.as_str())
                        } else {
                            let b = &bodies[i % bodies.len()];
                            (b.path, b.body.as_str())
                        };
                        i += 1;
                        // The measurement epoch: in open-loop mode the
                        // *scheduled* tick, even if we're running late
                        // (that lateness is the server's queueing
                        // delay); in closed-loop mode, now.
                        let started = match interval {
                            Some(iv) => {
                                let tick = base + offset + iv * seq;
                                seq += 1;
                                let now = Instant::now();
                                if tick > now {
                                    std::thread::sleep(tick - now);
                                }
                                tick
                            }
                            None => Instant::now(),
                        };
                        match exchange(&mut reader, &mut writer, &deadline_header, path, body) {
                            Ok(response) => {
                                let micros = started.elapsed().as_micros() as u64;
                                if huge {
                                    tally.huge_sent += 1;
                                    tally.huge_latency.record(micros);
                                } else {
                                    tally.latency.record(micros);
                                }
                                tally.responses += 1;
                                if response.status == 200 {
                                    tally.ok_200 += 1;
                                } else {
                                    tally.note_error(
                                        response.status,
                                        &response.body,
                                        !deadline_header.is_empty(),
                                    );
                                    if response.status == 503 {
                                        // Overloaded: shed by design,
                                        // and the connection was closed.
                                        continue 'reconnect;
                                    }
                                }
                            }
                            Err(_) => {
                                tally.transport_errors += 1;
                                continue 'reconnect;
                            }
                        }
                    }
                }
                tally
            })
        })
        .collect();

    let started = Instant::now();
    std::thread::sleep(Duration::from_secs(config.seconds));
    stop.store(true, Ordering::Relaxed);

    let mut merged = Tally::default();
    let mut served_per_slot = Vec::with_capacity(slots);
    for worker in workers {
        let tally = worker.join().expect("client thread panicked");
        // Shed 503s are not service: a slot whose only responses were
        // sheds never got real work done. Non-200s like 422 still
        // count — the solver ran.
        served_per_slot.push(tally.responses - tally.shed_503);
        merged.latency.merge(&tally.latency);
        merged.responses += tally.responses;
        merged.transport_errors += tally.transport_errors;
        merged.shed_503 += tally.shed_503;
        merged.other_5xx += tally.other_5xx;
        merged.non_200 += tally.non_200;
        merged.ok_200 += tally.ok_200;
        merged.deadline_504 += tally.deadline_504;
        merged.envelope_violations += tally.envelope_violations;
        if merged.envelope_example.is_none() {
            merged.envelope_example = tally.envelope_example;
        }
        merged.huge_latency.merge(&tally.huge_latency);
        merged.huge_sent += tally.huge_sent;
        merged.warm_latency.merge(&tally.warm_latency);
        merged.cold_latency.merge(&tally.cold_latency);
        merged.verify_latency.merge(&tally.verify_latency);
        merged.warm_solves += tally.warm_solves;
        merged.cold_solves += tally.cold_solves;
        merged.edit_batches += tally.edit_batches;
        merged.version_conflicts += tally.version_conflicts;
        merged.verify_mismatches += tally.verify_mismatches;
    }
    // A slot with zero non-shed responses over the whole run is the
    // starvation the epoll front-end exists to prevent; the per-slot
    // spread shows softer unfairness (a thread-per-connection server
    // pins a few connections and trickles the rest).
    served_per_slot.sort_unstable();
    let starved = served_per_slot.iter().filter(|&&s| s == 0).count();
    let elapsed = started.elapsed().as_secs_f64();

    let completed = merged.responses;
    println!("completed:  {completed} requests in {elapsed:.2}s");
    match config.rate {
        Some(rate) => println!(
            "throughput: {:.0} req/s achieved (target {rate} req/s)",
            completed as f64 / elapsed
        ),
        None => println!("throughput: {:.0} req/s", completed as f64 / elapsed),
    }
    println!(
        "goodput:    {:.0} ok/s ({} of {completed} responses were 200)",
        merged.ok_200 as f64 / elapsed,
        merged.ok_200
    );
    let p99_us = merged.latency.quantile(0.99);
    let p999_us = merged.latency.quantile(0.999);
    println!(
        "latency:    p50 {} us, p90 {} us, p99 {} us, p999 {} us, max {} us",
        merged.latency.quantile(0.50),
        merged.latency.quantile(0.90),
        p99_us,
        p999_us,
        merged.latency.max(),
    );
    if config.mix == Mix::Adversarial {
        println!(
            "adversary:  {} huge requests sent, {} intended deadline 504s; \
             huge p50 {} us, p99 {} us, max {} us (small-request latency above)",
            merged.huge_sent,
            merged.deadline_504,
            merged.huge_latency.quantile(0.50),
            merged.huge_latency.quantile(0.99),
            merged.huge_latency.max(),
        );
    }
    println!(
        "connections: {slots} persistent, {starved} starved; served/conn min {} p50 {} max {}",
        served_per_slot.first().copied().unwrap_or(0),
        percentile(&served_per_slot, 0.50),
        served_per_slot.last().copied().unwrap_or(0),
    );
    if config.mix == Mix::Session {
        println!(
            "session:    {} warm / {} cold re-solves, {} edit batches applied, {} version conflicts",
            merged.warm_solves, merged.cold_solves, merged.edit_batches, merged.version_conflicts
        );
        for (label, h) in [
            ("warm solve ", &merged.warm_latency),
            ("cold solve ", &merged.cold_latency),
            ("verify cold", &merged.verify_latency),
        ] {
            if h.count() == 0 {
                continue;
            }
            println!(
                "{label}: p50 {} us, p90 {} us, p99 {} us, max {} us",
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max(),
            );
        }
        if config.strict {
            println!(
                "verify:     {} warm re-solves cross-checked against stateless cold solves, {} mismatches",
                merged.warm_solves, merged.verify_mismatches
            );
        }
    }
    if config.mix == Mix::OutOfCore {
        println!(
            "outofcore:  {} cold (spilled) uploads / {} warm result-cache hits",
            merged.cold_solves, merged.warm_solves
        );
        for (label, h) in [
            ("cold solve ", &merged.cold_latency),
            ("warm hit   ", &merged.warm_latency),
            ("verify ram ", &merged.verify_latency),
        ] {
            if h.count() == 0 {
                continue;
            }
            println!(
                "{label}: p50 {} us, p90 {} us, p99 {} us, max {} us",
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max(),
            );
        }
        if config.strict {
            println!(
                "verify:     {} spilled solves cross-checked against the in-RAM control \
                 at {}, {} mismatches",
                merged.verify_latency.count(),
                config.verify_addr.as_deref().unwrap_or("<unset>"),
                merged.verify_mismatches
            );
        }
    }
    if merged.non_200 > 0 || merged.transport_errors > 0 {
        println!(
            "anomalies:  {} non-200 responses ({} shed 503s, {} deadline 504s, {} other 5xx), \
             {} transport errors",
            merged.non_200,
            merged.shed_503,
            merged.deadline_504,
            merged.other_5xx,
            merged.transport_errors
        );
    }
    let mut failures = Vec::new();
    if merged.other_5xx > 0 {
        failures.push(format!(
            "{} 5xx responses besides load sheds",
            merged.other_5xx
        ));
    }
    if starved > 0 {
        failures.push(format!("{starved} of {slots} connections starved"));
    }
    if config.mix == Mix::OutOfCore
        && config.strict
        && merged.verify_latency.count() < merged.cold_solves
    {
        // A cold solve whose verification exchange failed in transport
        // went unchecked; strict runs refuse to vouch for it.
        failures.push(format!(
            "only {} of {} spilled solves were cross-checked in RAM",
            merged.verify_latency.count(),
            merged.cold_solves
        ));
    }
    if merged.verify_mismatches > 0 {
        failures.push(if config.mix == Mix::OutOfCore {
            format!(
                "{} spilled solves differed from the in-RAM control",
                merged.verify_mismatches
            )
        } else {
            format!(
                "{} warm re-solves differed from their cold verification",
                merged.verify_mismatches
            )
        });
    }
    if merged.envelope_violations > 0 {
        failures.push(format!(
            "{} non-200 bodies were not valid v2 error envelopes (first: {})",
            merged.envelope_violations,
            merged
                .envelope_example
                .as_deref()
                .unwrap_or("<no diagnostic>")
        ));
    }
    if let Some(budget) = config.latency_budget {
        let budget_us = budget.as_micros() as u64;
        if p99_us > budget_us {
            failures.push(format!(
                "p99 latency {p99_us} us exceeds the {budget_us} us budget"
            ));
        }
    }
    if let Some(budget) = config.p999_budget {
        let budget_us = budget.as_micros() as u64;
        if p999_us > budget_us {
            failures.push(format!(
                "p999 latency {p999_us} us exceeds the {budget_us} us budget"
            ));
        }
    }
    if config.strict && !failures.is_empty() {
        eprintln!("loadgen: --strict: {}", failures.join("; "));
        std::process::exit(1);
    }
}
