//! A small closed-loop load generator for the partition service.
//!
//! Spawns N client threads, each holding one keep-alive connection and
//! issuing partition requests back-to-back for a fixed duration, then
//! reports aggregate throughput and latency quantiles.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--clients N] [--seconds S]
//!         [--nodes N] [--distinct D] [--mix chain|tree|simulate]
//! ```
//!
//! `--distinct` controls how many distinct request bodies the clients
//! cycle through: 1 measures the pure cache-hit path, a large value
//! measures solver throughput.
//!
//! `--mix` picks the request population:
//!
//! * `chain` (default) — `bandwidth` partitions of random chains.
//! * `tree` — tree objectives (`bottleneck`, `procmin`, `compose`)
//!   round-robin over random caterpillar trees.
//! * `simulate` — `/v1/simulate` pipeline replays of random chains.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    Chain,
    Tree,
    Simulate,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Chain => "chain",
            Mix::Tree => "tree",
            Mix::Simulate => "simulate",
        }
    }
}

struct Config {
    addr: String,
    clients: usize,
    seconds: u64,
    nodes: usize,
    distinct: usize,
    mix: Mix,
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config {
        addr: "127.0.0.1:7070".into(),
        clients: 8,
        seconds: 5,
        nodes: 64,
        distinct: 16,
        mix: Mix::Chain,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--clients" => {
                config.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--seconds" => {
                config.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?
            }
            "--nodes" => {
                config.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--distinct" => {
                config.distinct = value("--distinct")?
                    .parse()
                    .map_err(|e| format!("--distinct: {e}"))?
            }
            "--mix" => {
                config.mix = match value("--mix")?.as_str() {
                    "chain" => Mix::Chain,
                    "tree" => Mix::Tree,
                    "simulate" => Mix::Simulate,
                    other => {
                        return Err(format!(
                            "--mix must be chain, tree or simulate, got {other:?}"
                        ))
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--addr HOST:PORT] [--clients N] [--seconds S] \
                     [--nodes N] [--distinct D] [--mix chain|tree|simulate]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.clients == 0 || config.distinct == 0 || config.nodes < 2 {
        return Err("--clients and --distinct must be > 0, --nodes >= 2".into());
    }
    Ok(config)
}

/// One pre-rendered request: target path plus JSON body.
struct RequestBody {
    path: &'static str,
    body: String,
}

fn chain_graph(nodes: usize, v: usize) -> String {
    let node_weights: Vec<String> = (0..nodes)
        .map(|i| ((i * 7 + v * 13) % 9 + 1).to_string())
        .collect();
    let edge_weights: Vec<String> = (0..nodes - 1)
        .map(|i| ((i * 5 + v * 3) % 17 + 1).to_string())
        .collect();
    format!(
        r#"{{"node_weights":[{}],"edge_weights":[{}]}}"#,
        node_weights.join(","),
        edge_weights.join(",")
    )
}

/// A deterministic caterpillar tree: node `i > 0` hangs off node
/// `i - 1 - (i % 3)`, giving some branching without needing an RNG.
fn tree_graph(nodes: usize, v: usize) -> String {
    let node_weights: Vec<String> = (0..nodes)
        .map(|i| ((i * 11 + v * 7) % 9 + 1).to_string())
        .collect();
    let edges: Vec<String> = (1..nodes)
        .map(|i| {
            let parent = i - 1 - (i % 3).min(i - 1);
            let weight = (i * 3 + v * 5) % 17 + 1;
            format!(r#"{{"a":{parent},"b":{i},"weight":{weight}}}"#)
        })
        .collect();
    format!(
        r#"{{"node_weights":[{}],"edges":[{}]}}"#,
        node_weights.join(","),
        edges.join(",")
    )
}

/// Builds `distinct` request bodies of `nodes` nodes each for the given
/// mix, deterministically varied so their cache keys differ.
fn request_bodies(mix: Mix, nodes: usize, distinct: usize) -> Vec<RequestBody> {
    (0..distinct)
        .map(|v| {
            // A bound around 4/3 of the mean node weight times a few
            // nodes keeps every instance feasible but non-trivial.
            let bound = 4 * nodes / 3;
            match mix {
                Mix::Chain => RequestBody {
                    path: "/v1/partition",
                    body: format!(
                        r#"{{"objective":"bandwidth","bound":{bound},"graph":{}}}"#,
                        chain_graph(nodes, v)
                    ),
                },
                Mix::Tree => {
                    let objective = ["bottleneck", "procmin", "compose"][v % 3];
                    RequestBody {
                        path: "/v1/partition",
                        body: format!(
                            r#"{{"objective":"{objective}","bound":{bound},"graph":{}}}"#,
                            tree_graph(nodes, v)
                        ),
                    }
                }
                Mix::Simulate => RequestBody {
                    path: "/v1/simulate",
                    body: format!(
                        r#"{{"bound":{bound},"items":{},"graph":{}}}"#,
                        50 + v % 50,
                        chain_graph(nodes, v)
                    ),
                },
            }
        })
        .collect()
}

/// One HTTP exchange on an existing keep-alive connection. Returns
/// `false` when the connection is no longer usable.
fn exchange(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &RequestBody,
) -> Result<u16, std::io::Error> {
    write!(
        writer,
        "POST {} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
        request.path,
        request.body.len(),
        request.body
    )?;
    writer.flush()?;

    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
            })?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(status)
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank]
}

fn main() {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let bodies = Arc::new(request_bodies(config.mix, config.nodes, config.distinct));
    let stop = Arc::new(AtomicBool::new(false));

    println!(
        "loadgen: {} clients x {}s against {} (mix {}, {} nodes/graph, {} distinct bodies)",
        config.clients,
        config.seconds,
        config.addr,
        config.mix.name(),
        config.nodes,
        config.distinct
    );

    let workers: Vec<_> = (0..config.clients)
        .map(|c| {
            let addr = config.addr.clone();
            let bodies = Arc::clone(&bodies);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut latencies_us: Vec<u64> = Vec::new();
                let mut errors = 0u64;
                let mut non_200 = 0u64;
                'reconnect: while !stop.load(Ordering::Relaxed) {
                    let Ok(stream) = TcpStream::connect(&addr) else {
                        errors += 1;
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    };
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let Ok(writer) = stream.try_clone() else {
                        errors += 1;
                        continue;
                    };
                    let mut writer = writer;
                    let mut reader = BufReader::new(stream);
                    let mut i = c; // de-phase clients across the body set
                    while !stop.load(Ordering::Relaxed) {
                        let body = &bodies[i % bodies.len()];
                        i += 1;
                        let started = Instant::now();
                        match exchange(&mut reader, &mut writer, body) {
                            Ok(status) => {
                                latencies_us.push(started.elapsed().as_micros() as u64);
                                if status != 200 {
                                    non_200 += 1;
                                    if status == 503 {
                                        // Overloaded: connection was closed.
                                        continue 'reconnect;
                                    }
                                }
                            }
                            Err(_) => {
                                errors += 1;
                                continue 'reconnect;
                            }
                        }
                    }
                }
                (latencies_us, errors, non_200)
            })
        })
        .collect();

    let started = Instant::now();
    std::thread::sleep(Duration::from_secs(config.seconds));
    stop.store(true, Ordering::Relaxed);

    let mut latencies_us: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    let mut non_200 = 0u64;
    for worker in workers {
        let (l, e, n) = worker.join().expect("client thread panicked");
        latencies_us.extend(l);
        errors += e;
        non_200 += n;
    }
    let elapsed = started.elapsed().as_secs_f64();

    latencies_us.sort_unstable();
    let completed = latencies_us.len();
    println!("completed:  {completed} requests in {elapsed:.2}s");
    println!("throughput: {:.0} req/s", completed as f64 / elapsed);
    println!(
        "latency:    p50 {} us, p90 {} us, p99 {} us, max {} us",
        percentile(&latencies_us, 0.50),
        percentile(&latencies_us, 0.90),
        percentile(&latencies_us, 0.99),
        latencies_us.last().copied().unwrap_or(0),
    );
    if non_200 > 0 || errors > 0 {
        println!("anomalies:  {non_200} non-200 responses, {errors} transport errors");
    }
}
