//! The TCP transport: two interchangeable connection models in front of
//! one worker pool.
//!
//! **Threads mode** (`--io threads`): one acceptor thread owns the
//! listener and pushes accepted connections onto a [`BoundedQueue`] of
//! [`Work`]; a worker serves each connection's keep-alive exchanges
//! start to finish. Simple and portable, but every in-flight connection
//! pins a worker, so persistent connections beyond `--workers` starve
//! (EXPERIMENTS.md §SRV-OPEN / §SRV-EPOLL).
//!
//! **Epoll mode** (`--io epoll`, Linux): `tgp-net` event-loop threads
//! own accept, request framing, timeouts, and response writes. Only
//! *complete* requests reach a queue (as [`Work::Request`]), so workers
//! always compute instead of babysitting sockets; thousands of
//! connections can be open while `--workers` stays small. Responses
//! travel back through a [`LoopHandle`].
//!
//! With `loops > 1` (`--loops N`, default `auto` at the CLI), epoll
//! mode runs a [`LoopSet`]: N `SO_REUSEPORT` listeners on one address,
//! one event loop per core, each with its own accept path, timer
//! wheel, wake channel, per-loop [`Work`] queue, and a pinned slice of
//! the worker pool — the request hot path never crosses a loop
//! boundary. The result cache shards scale with the loop count and the
//! session/store state stays global behind its existing locks (see
//! docs/SERVICE.md "Multi-core model" for the cross-loop semantics).
//!
//! Both modes share the queue, the worker pool, the HTTP parser and
//! serializer, and the handler — responses are byte-identical; only the
//! connection plumbing differs. When the queue is full, both shed at
//! the door with a 503 carrying a `retry-after` derived from the queue
//! depth.
//!
//! With a cache file configured, the server attaches an append-on-ack
//! journal (see `cache_journal`): boot replays the longest intact
//! prefix (a corrupt tail is trimmed; a foreign file is logged and left
//! untouched — never trusted), every admitted insert appends one
//! record, and a maintenance thread compacts a grown log back to a
//! snapshot of the live entries, as does a graceful
//! [`Server::shutdown`]. An abrupt kill (`kill -9`) therefore loses at
//! most one torn record. Legacy whole-file `TGPCACHE` dumps are
//! migrated to journal form on boot.
//!
//! Shutdown: in threads mode, [`Server::shutdown`] raises a flag,
//! connects to the listener once to unblock `accept()`, and the exiting
//! acceptor closes the queue; workers notice at their next request
//! boundary (bounded by the read timeout). In epoll mode the event loop
//! drains first — accepting stops, idle connections close, in-flight
//! requests get the drain window to finish *while workers are still
//! alive to answer them* — and only then is the queue closed and the
//! pool joined. The final cache dump happens after both.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::api::{handle_traced, AppState, RequestCtx, DEADLINE_HEADER};
use crate::cache::CacheConfig;
use crate::envelope::envelope_body;
use crate::http::{
    overloaded_response, read_request_spilling, retry_after_secs, write_response,
    write_response_with, RecvError, MAX_HEAD_BYTES,
};
use crate::pool::{BoundedQueue, PushError, QueueSet, Work};
use tgp_net::{
    request_header_value, Action, ConnId, FrameError, LoopHandle, LoopSet, NetConfig, ShardSpec,
};
use tgp_obs::{EventKind, Stage, TraceId};

/// Which connection model the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Thread-per-connection: a worker owns each accepted socket for
    /// its whole lifetime. Portable; degrades when open connections
    /// exceed `workers`.
    Threads,
    /// Readiness-driven event loop (`tgp-net`, Linux only): one thread
    /// multiplexes every socket and workers only see complete requests.
    Epoll,
}

impl Default for IoMode {
    /// Epoll where it exists: the event loop serves any number of
    /// connections with `workers` threads, while thread-per-connection
    /// starves everything beyond the pool (EXPERIMENTS.md §SRV-EPOLL).
    fn default() -> IoMode {
        if cfg!(target_os = "linux") {
            IoMode::Epoll
        } else {
            IoMode::Threads
        }
    }
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<IoMode, String> {
        match s {
            "threads" => Ok(IoMode::Threads),
            "epoll" => Ok(IoMode::Epoll),
            other => Err(format!(
                "unknown io mode {other:?} (expected \"threads\" or \"epoll\")"
            )),
        }
    }
}

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (port 0 picks an ephemeral
    /// port — useful for tests).
    pub addr: String,
    /// Connection model; see [`IoMode`].
    pub io: IoMode,
    /// Number of worker threads.
    pub workers: usize,
    /// Event loops in epoll mode: each gets its own `SO_REUSEPORT`
    /// listener, timer wheel, request queue, and worker slice. `0`
    /// means auto (one per available core, capped at [`MAX_LOOPS`]).
    /// Ignored in threads mode. The library default is 1 — embedders
    /// and tests get the single-loop behavior unless they opt in.
    pub loops: usize,
    /// Result-cache policy: byte budget, TTL, admission limit. A zero
    /// budget disables caching.
    pub cache: CacheConfig,
    /// Persist the result cache here as an append-on-ack journal:
    /// replayed on boot, appended to on every admitted insert,
    /// compacted when grown and on graceful shutdown. `None` keeps the
    /// cache memory-only.
    pub cache_file: Option<PathBuf>,
    /// How often the maintenance thread checks whether the cache
    /// journal has outgrown the live entries and compacts it.
    pub cache_flush_interval: Duration,
    /// Connections allowed to wait for a worker before the acceptor
    /// sheds load with 503.
    pub queue_depth: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Simultaneously open connections (epoll mode): at the cap the
    /// listener pauses instead of accepting. Ignored in threads mode,
    /// where `queue_depth` plus `workers` bounds concurrency.
    pub max_connections: usize,
    /// Total deadline for receiving one complete request, from its
    /// first byte. Progress does not reset it, so byte-at-a-time
    /// senders still time out. Also bounds shutdown latency in threads
    /// mode.
    pub read_timeout: Duration,
    /// Total deadline for writing one complete response (epoll mode);
    /// per-write-syscall deadline in threads mode.
    pub write_timeout: Duration,
    /// Progress floor for the write deadline (epoll mode): a connection
    /// that accepts at least this many response bytes per
    /// `write_timeout` window keeps its timer renewed, so a large
    /// response to a slow-but-live reader survives while a stalled one
    /// still closes within one window. `0` restores the legacy total
    /// deadline.
    pub write_min_bytes: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// (epoll mode). Threads mode folds idle time into `read_timeout`.
    pub idle_timeout: Duration,
    /// Shed cache-missing requests whose [`cost
    /// estimate`](tgp_solvers::Solver::cost_estimate) exceeds this once
    /// the queue is nearly full. `None` disables cost-based admission.
    pub shed_cost: Option<u64>,
    /// Shed cache-missing requests whose deadline has fewer than this
    /// many milliseconds left once the queue is nearly full — they
    /// would almost certainly expire mid-solve. `None` disables
    /// remaining-time admission.
    pub shed_remaining: Option<u64>,
    /// Write one structured access-log line per request to stderr
    /// (`tgp-access method=… path=… objective=… status=… micros=…
    /// queue_us=… total_us=… trace=…`; see docs/OBSERVABILITY.md).
    pub log_requests: bool,
    /// Serve the `GET /debug/*` introspection endpoints
    /// (`/debug/trace/<id>`, `/debug/slow`, `/debug/events`). Off by
    /// default: they expose request timing internals.
    pub debug_endpoints: bool,
    /// Persist session graphs (`/v1/graphs`) to this append-only edit
    /// journal: replayed on boot, appended to on every acknowledged
    /// mutation, compacted to a snapshot on graceful shutdown. `None`
    /// keeps sessions memory-only.
    pub session_file: Option<PathBuf>,
    /// Byte budget for resident session graphs; registrations beyond it
    /// are refused with 413 (`session_budget_exceeded`).
    pub session_budget: u64,
    /// Request bodies at or above this many bytes take the streaming
    /// flat-ingest path with *disk* (mmap) backing instead of RAM, so a
    /// graph bigger than memory still solves (`tgp-store`'s `DiskVec`).
    /// Smaller eligible bodies ingest into flat RAM arrays.
    pub graph_spill_bytes: u64,
    /// Directory for spill files (unlinked once mapped). `None` uses
    /// the system temp directory.
    pub graph_spill_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".into(),
            io: IoMode::default(),
            workers: 4,
            loops: 1,
            cache: CacheConfig::default(),
            cache_file: None,
            cache_flush_interval: Duration::from_secs(2),
            queue_depth: 64,
            max_body_bytes: 1 << 20, // 1 MiB
            max_connections: 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            write_min_bytes: 1024,
            idle_timeout: Duration::from_secs(60),
            shed_cost: None,
            shed_remaining: None,
            log_requests: false,
            debug_endpoints: false,
            session_file: None,
            session_budget: tgp_session::DEFAULT_SESSION_BUDGET,
            graph_spill_bytes: 64 << 20, // 64 MiB
            graph_spill_dir: None,
        }
    }
}

/// Upper bound on `--loops`: beyond this, extra loops only add epoll
/// sets and timer wheels without more cores to run them.
pub const MAX_LOOPS: usize = 64;

/// Resolves a configured loop count: `0` means one loop per available
/// core (the `--loops auto` default at the CLI).
fn resolve_loops(configured: usize) -> usize {
    let n = match configured {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    };
    n.clamp(1, MAX_LOOPS)
}

/// A running server; dropping it without [`Server::shutdown`] detaches
/// the threads (they keep serving until the process exits).
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    queues: Arc<QueueSet<Work>>,
    acceptor: Option<JoinHandle<()>>,
    loops: Option<LoopSet>,
    workers: Vec<JoinHandle<()>>,
    flusher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the connection front-end
    /// (acceptor thread or epoll event loop, per `config.io`) plus the
    /// worker pool. With a `cache_file`, attaches the cache journal
    /// first — replaying what survives, rejecting (with a log line) any
    /// file that fails validation — and spawns the compaction thread.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let loop_count = match config.io {
            IoMode::Epoll => resolve_loops(config.loops),
            IoMode::Threads => 1,
        };
        // Bind before anything else so a bad address fails fast. A
        // single loop binds a plain listener (no `SO_REUSEPORT`), so
        // double-binding a busy port still fails loudly; multi-loop
        // binds `loop_count` reuseport listeners sharing the address
        // and lets the kernel hash connections across them.
        let (threads_listener, shard_listeners, local_addr) = match (config.io, loop_count) {
            (IoMode::Threads, _) => {
                let listener = TcpListener::bind(&config.addr)?;
                let addr = listener.local_addr()?;
                (Some(listener), Vec::new(), addr)
            }
            (IoMode::Epoll, 1) => {
                let listener = TcpListener::bind(&config.addr)?;
                let addr = listener.local_addr()?;
                (None, vec![listener], addr)
            }
            (IoMode::Epoll, n) => {
                let addr = config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "bind address resolved to nothing",
                    )
                })?;
                let (listeners, addr) = LoopSet::bind(&addr, n)?;
                (None, listeners, addr)
            }
        };
        // Journal-backed sessions replay before the listener serves a
        // request, so clients never observe a pre-replay store. A file
        // that fails validation is left untouched and sessions run
        // memory-only — same degraded-but-up policy as the cache file.
        let sessions = match &config.session_file {
            Some(path) => {
                match tgp_session::SessionStore::with_journal(path, config.session_budget) {
                    Ok(store) => {
                        eprintln!(
                            "tgp-serve session journal {} replayed: {} resident graphs",
                            path.display(),
                            store.open_count()
                        );
                        Arc::new(store)
                    }
                    Err(why) => {
                        eprintln!(
                            "tgp-serve ignoring session file {}: {why} (sessions are memory-only)",
                            path.display()
                        );
                        Arc::new(tgp_session::SessionStore::new(config.session_budget))
                    }
                }
            }
            None => Arc::new(tgp_session::SessionStore::new(config.session_budget)),
        };
        let state = Arc::new(
            // More loops insert into the cache concurrently, so its
            // shard count scales with the loop count (never below the
            // configured shards).
            AppState::new(config.cache.clone().scaled_for_loops(loop_count))
                .with_access_log(config.log_requests)
                .with_debug_endpoints(config.debug_endpoints)
                .with_shed_cost(config.shed_cost)
                .with_shed_remaining(config.shed_remaining)
                .with_graph_spill(config.graph_spill_bytes, config.graph_spill_dir.clone())
                .with_sessions(sessions)
                .with_net_loops(loop_count),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let worker_count = config.workers.max(1);
        // Each loop owns a queue slice of the configured depth and a
        // pinned worker slice: loop i's workers pop only from queue i,
        // so the request hot path never takes a lock another loop's
        // requests contend on. Worker shares differ by at most one,
        // and every loop gets at least one worker even when
        // `workers < loops`.
        let per_loop_depth = config.queue_depth.max(1).div_ceil(loop_count);
        let shard_queues: Vec<Arc<BoundedQueue<Work>>> = (0..loop_count)
            .map(|_| Arc::new(BoundedQueue::new(per_loop_depth)))
            .collect();
        let worker_shares: Vec<usize> = (0..loop_count)
            .map(|i| {
                (worker_count / loop_count + usize::from(i < worker_count % loop_count)).max(1)
            })
            .collect();
        let queues = Arc::new(QueueSet::new(shard_queues.clone()));
        state.attach_pool(Arc::clone(&queues));

        if let Some(path) = &config.cache_file {
            match state.cache.attach_journal(path) {
                Ok(report) => eprintln!(
                    "tgp-serve cache journal {} replayed: {} entries{}{}",
                    path.display(),
                    report.admitted,
                    if report.truncated {
                        " (torn tail trimmed)"
                    } else {
                        ""
                    },
                    if report.migrated {
                        " (migrated from legacy dump)"
                    } else {
                        ""
                    },
                ),
                Err(why) => eprintln!(
                    "tgp-serve ignoring cache file {}: {why} (cache is memory-only)",
                    path.display()
                ),
            }
        }

        let mut workers = Vec::new();
        for (shard, share) in worker_shares.iter().enumerate() {
            for slot in 0..*share {
                let queue = Arc::clone(&shard_queues[shard]);
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                let max_body = config.max_body_bytes;
                let read_timeout = config.read_timeout;
                let write_timeout = config.write_timeout;
                let name = if loop_count == 1 {
                    format!("tgp-worker-{slot}")
                } else {
                    format!("tgp-worker-{shard}-{slot}")
                };
                let worker = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || {
                        while let Some(work) = queue.pop() {
                            state.metrics.queue_changed(-1);
                            state.metrics.workers_changed(1);
                            match work {
                                Work::Conn {
                                    stream,
                                    enqueued_at,
                                } => {
                                    if state.debug_endpoints {
                                        let now = Instant::now();
                                        let wait = now.saturating_duration_since(enqueued_at);
                                        state.journal.append_at(
                                            now,
                                            EventKind::Dequeue,
                                            0,
                                            0,
                                            wait.as_nanos() as u64,
                                        );
                                    }
                                    serve_connection(
                                        &state,
                                        &stop,
                                        stream,
                                        enqueued_at,
                                        max_body,
                                        read_timeout,
                                        write_timeout,
                                    );
                                }
                                Work::Request {
                                    conn,
                                    bytes,
                                    reply,
                                    trace,
                                    enqueued_at,
                                    deadline,
                                } => {
                                    let now = Instant::now();
                                    if state.debug_endpoints {
                                        let wait = now.saturating_duration_since(enqueued_at);
                                        state.journal.append_at(
                                            now,
                                            EventKind::Dequeue,
                                            trace.as_u64(),
                                            u64::from(conn.index),
                                            wait.as_nanos() as u64,
                                        );
                                    }
                                    if deadline.is_some_and(|d| now >= d) {
                                        // The deadline passed while the
                                        // request waited in the queue:
                                        // drop it without even parsing.
                                        let (response, keep_alive) =
                                            expired_in_queue_response(&state);
                                        reply.submit(conn, response, keep_alive);
                                    } else {
                                        let (response, keep_alive, trace, seq) = respond_to_bytes(
                                            &state,
                                            &bytes,
                                            max_body,
                                            &stop,
                                            trace,
                                            Some(enqueued_at),
                                            now,
                                            deadline,
                                        );
                                        // Registered before the submit: the loop may
                                        // finish flushing (and report the write) the
                                        // instant the response lands.
                                        state.note_write_pending(conn, trace, seq);
                                        reply.submit(conn, response, keep_alive);
                                    }
                                }
                                Work::Batch(subtask) => subtask.run(&state),
                            }
                            state.metrics.workers_changed(-1);
                        }
                    })
                    .expect("spawn worker");
                workers.push(worker);
            }
        }

        let (acceptor, loop_set) = match config.io {
            IoMode::Threads => {
                let listener = threads_listener.expect("threads mode bound a listener");
                let queue = Arc::clone(&shard_queues[0]);
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                let acceptor = std::thread::Builder::new()
                    .name("tgp-acceptor".into())
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = stream else { continue };
                            // Raise the gauge *before* the push: a worker may
                            // pop (and decrement) the instant the push lands,
                            // and increment-after would transiently wrap the
                            // gauge below zero.
                            state.metrics.queue_changed(1);
                            let enqueued_at = Instant::now();
                            if state.debug_endpoints {
                                state
                                    .journal
                                    .append_at(enqueued_at, EventKind::Enqueue, 0, 0, 0);
                            }
                            match queue.try_push(Work::Conn {
                                stream,
                                enqueued_at,
                            }) {
                                Ok(()) => {}
                                Err(PushError::Full(Work::Conn { mut stream, .. })) => {
                                    state.metrics.queue_changed(-1);
                                    state.metrics.record_overload();
                                    if state.debug_endpoints {
                                        state.journal.append(EventKind::Shed, 0, 0, 0);
                                    }
                                    let retry = retry_after_secs(queue.len(), worker_count);
                                    let _ = stream.write_all(&overloaded_response(retry));
                                    let _ = stream.flush();
                                }
                                Err(_) => {
                                    // Closed (shutdown) — or a Full returning
                                    // something other than what we pushed,
                                    // which cannot happen.
                                    state.metrics.queue_changed(-1);
                                    break;
                                }
                            }
                        }
                        queue.close();
                    })
                    .expect("spawn acceptor");
                (Some(acceptor), None)
            }
            IoMode::Epoll => {
                let net_config = NetConfig {
                    // The connection cap splits across loops so the
                    // configured total still bounds the whole server.
                    max_connections: config.max_connections.max(1).div_ceil(loop_count),
                    read_timeout: config.read_timeout,
                    write_timeout: config.write_timeout,
                    write_min_bytes: config.write_min_bytes,
                    idle_timeout: config.idle_timeout,
                    max_head_bytes: MAX_HEAD_BYTES,
                    max_body_bytes: config.max_body_bytes as u64,
                    journal: state.debug_endpoints.then(|| Arc::clone(&state.journal)),
                    ..NetConfig::default()
                };
                let shards = shard_listeners
                    .into_iter()
                    .enumerate()
                    .map(|(i, listener)| ShardSpec {
                        listener,
                        counters: Arc::clone(
                            state.metrics.net_for(i).expect("metrics sized for loops"),
                        ),
                        handler: Arc::new(EpollHandler {
                            state: Arc::clone(&state),
                            queue: Arc::clone(&shard_queues[i]),
                            workers: worker_shares[i],
                        }),
                    })
                    .collect();
                let loop_set = LoopSet::spawn(shards, &net_config)?;
                (None, Some(loop_set))
            }
        };

        // Appends make every insert durable on their own; this thread
        // only keeps the journal from growing without bound.
        let flusher = config.cache_file.is_some().then(|| {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let interval = config.cache_flush_interval.max(Duration::from_millis(50));
            std::thread::Builder::new()
                .name("tgp-cache-compactor".into())
                .spawn(move || loop {
                    // Sleep in short steps so shutdown is never
                    // delayed by a long compaction interval.
                    let mut slept = Duration::ZERO;
                    while slept < interval && !stop.load(Ordering::SeqCst) {
                        let step = Duration::from_millis(50).min(interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if state.cache.should_compact() {
                        // compact_journal logs its own failures and
                        // detaches the journal, so an error here needs
                        // no extra handling.
                        let _ = state.cache.compact_journal();
                    }
                })
                .expect("spawn cache compactor")
        });

        Ok(Server {
            local_addr,
            state,
            stop,
            queues,
            acceptor,
            loops: loop_set,
            workers,
            flusher,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Handler state, exposed for tests and embedding.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Number of event loops serving (epoll mode; 0 in threads mode).
    pub fn net_loops(&self) -> usize {
        self.loops.as_ref().map_or(0, LoopSet::len)
    }

    /// Shuts down event loop `i` alone, closing its listener so the
    /// kernel redistributes new connections across the remaining loops
    /// — the degraded-capacity path, exposed for robustness tests.
    /// The loop's pinned workers stay alive (batch scatter still uses
    /// them via the shared [`QueueSet`]). Returns `false` when there is
    /// no such loop or it is already down.
    pub fn kill_loop(&mut self, i: usize) -> bool {
        self.loops.as_mut().is_some_and(|set| set.shutdown_one(i))
    }

    /// Blocks until the server stops (i.e. forever, unless another
    /// thread calls [`Server::shutdown`] or the front-end dies).
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
    }

    /// Stops accepting, drains in-flight work, joins all threads, and
    /// (with a cache file configured) compacts the cache journal.
    ///
    /// In epoll mode the event loops drain *before* the queues close:
    /// dispatched requests still have live workers to compute them and
    /// a live loop to flush their responses. Multi-loop teardown drains
    /// every loop concurrently — one drain window total.
    pub fn shutdown(&mut self) {
        if let Some(loop_set) = self.loops.take() {
            loop_set.shutdown();
        }
        self.stop.store(true, Ordering::SeqCst);
        if self.acceptor.is_some() {
            // Unblock `accept()` with a throwaway connection; the
            // acceptor re-checks the stop flag before queueing it, then
            // closes the queue on its way out.
            let _ = TcpStream::connect(self.local_addr);
        } else {
            // Epoll mode has no acceptor to close the queues.
            self.queues.close();
        }
        self.wait();
        // Compact the session journal to a snapshot: restart replays one
        // record per graph instead of the whole edit history.
        if self.state.sessions.journal_path().is_some() {
            if let Err(e) = self.state.sessions.compact() {
                eprintln!("tgp-serve session journal compaction failed: {e}");
            }
        }
        // Same discipline for the cache journal: restart replays one
        // record per live entry instead of the whole insert history.
        let _ = self.state.cache.compact_journal();
    }
}

// ---- epoll front-end ----------------------------------------------

/// The `tgp-net` handler: runs on the event-loop thread, so it only
/// does bounded work — a queue push, or serializing a canned error.
struct EpollHandler {
    state: Arc<AppState>,
    queue: Arc<BoundedQueue<Work>>,
    workers: usize,
}

impl tgp_net::Handler for EpollHandler {
    fn on_request(&self, conn: ConnId, bytes: Vec<u8>, handle: &LoopHandle) -> Action {
        // Mint the trace at frame time: the queue wait is part of the
        // request's story. A client-supplied x-trace-id/traceparent
        // header replaces this id at parse time on the worker.
        let trace = TraceId::mint();
        // Same gauge protocol as the threads acceptor: raise before the
        // push so a racing worker's decrement cannot wrap it.
        self.state.metrics.queue_changed(1);
        let enqueued_at = Instant::now();
        if self.state.debug_endpoints {
            self.state.journal.append_at(
                enqueued_at,
                EventKind::Enqueue,
                trace.as_u64(),
                u64::from(conn.index),
                0,
            );
        }
        // Peek at the deadline header at frame time so a worker can
        // drop the request if it expires while queued. A malformed
        // value stays None here; the worker's full parse answers 400.
        let deadline = request_header_value(&bytes, DEADLINE_HEADER.as_bytes())
            .and_then(|v| std::str::from_utf8(v).ok())
            .and_then(|s| s.trim().parse::<u64>().ok())
            .map(|ms| enqueued_at + Duration::from_millis(ms));
        match self.queue.try_push(Work::Request {
            conn,
            bytes,
            reply: handle.clone(),
            trace,
            enqueued_at,
            deadline,
        }) {
            Ok(()) => Action::Pending,
            Err(PushError::Full(_)) => {
                self.state.metrics.queue_changed(-1);
                self.state.metrics.record_overload();
                if self.state.debug_endpoints {
                    self.state.journal.append(
                        EventKind::Shed,
                        trace.as_u64(),
                        u64::from(conn.index),
                        0,
                    );
                }
                let retry = retry_after_secs(self.queue.len(), self.workers);
                Action::Respond {
                    bytes: overloaded_response(retry),
                    keep_alive: false,
                }
            }
            Err(PushError::Closed(_)) => {
                // Shutting down: an empty response flushes instantly
                // and the connection closes.
                self.state.metrics.queue_changed(-1);
                Action::Respond {
                    bytes: Vec::new(),
                    keep_alive: false,
                }
            }
        }
    }

    fn on_frame_error(&self, err: FrameError) -> Vec<u8> {
        let (status, message, code) = match err {
            FrameError::HeadTooLarge => (400, "request head too large".to_string(), "bad_request"),
            FrameError::BadContentLength => (400, "bad content-length".to_string(), "bad_request"),
            FrameError::BodyTooLarge { declared, limit } => (
                413,
                format!("body of {declared} bytes exceeds limit of {limit}"),
                "body_too_large",
            ),
        };
        self.state
            .metrics
            .record_request("other", status, Duration::ZERO);
        let body = envelope_body(code, &message, None, None, false);
        let mut out = Vec::new();
        let _ = write_response(&mut out, status, "application/json", body.as_bytes(), false);
        out
    }

    fn on_write_complete(&self, conn: ConnId, elapsed: Duration) {
        self.state.complete_write(conn, elapsed);
    }
}

/// Parses one framed request and serializes the response — the worker
/// half of epoll mode. Same parser and serializer as threads mode, so
/// both `--io` modes answer byte-identically. Returns the wire bytes,
/// whether the connection should be kept alive, and the trace id and
/// commit handle the request ran under (NONE/None for unparseable
/// requests), so the caller can attribute the eventual socket write.
// Transport plumbing: each argument is a distinct per-request fact the
// epoll loop already holds; bundling them into a struct would only move
// the same list one call further away.
#[allow(clippy::too_many_arguments)]
fn respond_to_bytes(
    state: &AppState,
    bytes: &[u8],
    max_body: usize,
    stop: &AtomicBool,
    trace: TraceId,
    enqueued_at: Option<Instant>,
    dequeued_at: Instant,
    deadline: Option<Instant>,
) -> (Vec<u8>, bool, TraceId, Option<u64>) {
    let mut reader = bytes;
    let mut out = Vec::new();
    // Epoll mode frames the whole request on the heap; re-parsing it
    // through the spilling reader moves a huge body into an unlinked
    // spill mapping, so the frame buffer can be dropped before the
    // (long) solve phase holds the bytes.
    let spill = state.body_spill();
    match read_request_spilling(&mut reader, max_body, Some(&spill)) {
        Ok(request) => {
            let parse = dequeued_at.elapsed();
            let ctx = RequestCtx {
                trace,
                enqueued_at,
                dequeued_at,
                parse,
                deadline,
            };
            let response = handle_traced(state, &request, ctx);
            let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
            let _ = write_response_with(
                &mut out,
                response.status,
                response.content_type,
                &response.headers,
                response.body.as_bytes(),
                keep_alive,
            );
            (out, keep_alive, response.trace, response.trace_seq)
        }
        // The framer only dispatches complete requests, so these are
        // unreachable in practice; answer with a close either way.
        Err(RecvError::Disconnected) | Err(RecvError::TimedOut) => {
            (out, false, TraceId::NONE, None)
        }
        Err(RecvError::BadRequest(message)) => {
            let body = envelope_body("bad_request", &message, None, None, false);
            state.metrics.record_request("other", 400, Duration::ZERO);
            let _ = write_response(&mut out, 400, "application/json", body.as_bytes(), false);
            (out, false, TraceId::NONE, None)
        }
        Err(RecvError::BodyTooLarge { declared, limit }) => {
            let message = format!("body of {declared} bytes exceeds limit of {limit}");
            let body = envelope_body("body_too_large", &message, None, None, false);
            state.metrics.record_request("other", 413, Duration::ZERO);
            let _ = write_response(&mut out, 413, "application/json", body.as_bytes(), false);
            (out, false, TraceId::NONE, None)
        }
    }
}

/// Canned 504 for a queued request whose deadline passed before a
/// worker could even parse it. Counted under the `queue` drop site.
fn expired_in_queue_response(state: &AppState) -> (Vec<u8>, bool) {
    state.metrics.record_deadline_drop("queue");
    state.metrics.record_request("other", 504, Duration::ZERO);
    let body = envelope_body(
        "deadline_exceeded",
        "deadline expired while the request waited in the queue",
        None,
        Some(0),
        false,
    );
    let mut out = Vec::new();
    let _ = write_response(&mut out, 504, "application/json", body.as_bytes(), false);
    (out, false)
}

// ---- threads front-end --------------------------------------------

/// Wraps a blocking socket with a *total* deadline: every read gets a
/// socket timeout of exactly the time remaining, so a byte-at-a-time
/// sender cannot reset the clock by making progress (slowloris
/// defense) — the same read-timeout semantics the epoll loop enforces
/// with its timer wheel.
struct DeadlineStream {
    stream: TcpStream,
    deadline: Instant,
}

impl DeadlineStream {
    /// Starts the next request's deadline window.
    fn reset(&mut self, timeout: Duration) {
        self.deadline = Instant::now() + timeout;
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request deadline elapsed",
            ));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        self.stream.read(buf)
    }
}

/// Serves keep-alive exchanges on one connection until it ends
/// (threads mode). Maintains the same `tgp-net` counters the epoll
/// loop does, so `/metrics` means the same thing under both `--io`
/// modes; threads mode folds idle keep-alive time into the read
/// deadline, so `kind="idle"` stays zero here.
fn serve_connection(
    state: &AppState,
    stop: &AtomicBool,
    stream: TcpStream,
    enqueued_at: Instant,
    max_body: usize,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    let net = Arc::clone(state.metrics.net());
    net.open_connections.fetch_add(1, Ordering::Relaxed);
    serve_connection_inner(
        state,
        stop,
        stream,
        enqueued_at,
        max_body,
        read_timeout,
        write_timeout,
    );
    net.open_connections.fetch_sub(1, Ordering::Relaxed);
}

fn serve_connection_inner(
    state: &AppState,
    stop: &AtomicBool,
    stream: TcpStream,
    enqueued_at: Instant,
    max_body: usize,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    let net = state.metrics.net();
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let _ = write_half.set_write_timeout(Some(write_timeout));
    let mut write_half = write_half;
    let mut reader = BufReader::new(DeadlineStream {
        stream,
        deadline: Instant::now() + read_timeout,
    });

    // Only the connection's first request waited on the worker queue;
    // later keep-alive requests start their trace at read time.
    let mut pending_enqueue = Some(enqueued_at);
    let spill = state.body_spill();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let read_started = Instant::now();
        match read_request_spilling(&mut reader, max_body, Some(&spill)) {
            Ok(request) => {
                // In threads mode the parse span includes the blocking
                // socket read (the two are one pass over the stream);
                // see docs/OBSERVABILITY.md.
                let ctx = RequestCtx {
                    trace: TraceId::NONE,
                    enqueued_at: pending_enqueue.take(),
                    dequeued_at: read_started,
                    parse: read_started.elapsed(),
                    // Threads mode has no frame-time peek; handle_traced
                    // parses the x-deadline-ms header itself.
                    deadline: None,
                };
                let response = handle_traced(state, &request, ctx);
                let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
                let write_started = Instant::now();
                match write_response_with(
                    &mut write_half,
                    response.status,
                    response.content_type,
                    &response.headers,
                    response.body.as_bytes(),
                    keep_alive,
                ) {
                    Ok(()) => {
                        let write_done = Instant::now();
                        let write_dur = write_done.saturating_duration_since(write_started);
                        state.metrics.record_stage(Stage::Write, write_dur);
                        if let Some(seq) = response.trace_seq {
                            state.traces.append_span_at(
                                seq,
                                response.trace,
                                Stage::Write,
                                write_dur,
                            );
                        }
                        if state.debug_endpoints {
                            state.journal.append_at(
                                write_done,
                                EventKind::WriteDone,
                                response.trace.as_u64(),
                                0,
                                write_dur.as_nanos() as u64,
                            );
                        }
                        if !keep_alive {
                            return;
                        }
                    }
                    Err(e) => {
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) {
                            net.timeout_closes_write.fetch_add(1, Ordering::Relaxed);
                        }
                        return;
                    }
                }
                // The next request gets a fresh total deadline.
                reader.get_mut().reset(read_timeout);
            }
            Err(RecvError::Disconnected) => return,
            Err(RecvError::TimedOut) => {
                net.timeout_closes_read.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(RecvError::BadRequest(message)) => {
                let body = envelope_body("bad_request", &message, None, None, false);
                state.metrics.record_request("other", 400, Duration::ZERO);
                let _ = write_response(
                    &mut write_half,
                    400,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
            Err(RecvError::BodyTooLarge { declared, limit }) => {
                let message = format!("body of {declared} bytes exceeds limit of {limit}");
                let body = envelope_body("body_too_large", &message, None, None, false);
                state.metrics.record_request("other", 413, Duration::ZERO);
                let _ = write_response(
                    &mut write_half,
                    413,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
        }
    }
}
