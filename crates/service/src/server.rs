//! The TCP transport: acceptor, bounded queue, worker pool, shutdown.
//!
//! One acceptor thread owns the listener. Each accepted connection is
//! pushed onto a [`BoundedQueue`] of [`Work`]; when the queue is full
//! the acceptor immediately writes a 503 (with a `retry-after` derived
//! from the queue depth) and closes — backpressure is shed at the door
//! rather than queued into unbounded latency. A fixed pool of worker
//! threads pops work items: whole connections to serve HTTP/1.1
//! keep-alive exchanges on, and individual batch subtasks scattered by
//! a worker coordinating a `/v1/partition` batch.
//!
//! With a cache file configured, the server warm-loads the result cache
//! on boot (a corrupt file is logged and ignored — never trusted), and
//! a flusher thread persists the cache whenever it changed, so even an
//! abrupt kill loses at most one flush interval of entries. A graceful
//! [`Server::shutdown`] writes a final dump.
//!
//! Shutdown: [`Server::shutdown`] raises a flag, connects to the
//! listener once to unblock `accept()`, closes the queue so idle workers
//! wake, and joins every thread. Workers notice the flag at their next
//! request boundary (bounded by the read timeout), so shutdown completes
//! in at most roughly one timeout interval.

use std::io::BufReader;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::api::{handle, AppState};
use crate::cache::CacheConfig;
use crate::http::{overloaded_response, read_request, retry_after_secs, write_response, RecvError};
use crate::pool::{BoundedQueue, PushError, Work};
use tgp_graph::json;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (port 0 picks an ephemeral
    /// port — useful for tests).
    pub addr: String,
    /// Number of worker threads.
    pub workers: usize,
    /// Result-cache policy: byte budget, TTL, admission limit. A zero
    /// budget disables caching.
    pub cache: CacheConfig,
    /// Persist the result cache here: warm-load on boot, flush
    /// periodically and on graceful shutdown. `None` keeps the cache
    /// memory-only.
    pub cache_file: Option<PathBuf>,
    /// How often the flusher re-dumps a changed cache to `cache_file`;
    /// also the most data an abrupt kill can lose.
    pub cache_flush_interval: Duration,
    /// Connections allowed to wait for a worker before the acceptor
    /// sheds load with 503.
    pub queue_depth: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Per-connection read timeout; also bounds shutdown latency.
    pub read_timeout: Duration,
    /// Write one structured access-log line per request to stderr
    /// (`tgp-access method=… path=… objective=… status=… micros=…`).
    pub log_requests: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".into(),
            workers: 4,
            cache: CacheConfig::default(),
            cache_file: None,
            cache_flush_interval: Duration::from_secs(2),
            queue_depth: 64,
            max_body_bytes: 1 << 20, // 1 MiB
            read_timeout: Duration::from_secs(5),
            log_requests: false,
        }
    }
}

/// A running server; dropping it without [`Server::shutdown`] detaches
/// the threads (they keep serving until the process exits).
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    flusher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor plus worker pool.
    /// With a `cache_file`, warm-loads the cache first (rejecting, with
    /// a log line, any file that fails validation) and spawns the
    /// periodic flusher.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let state =
            Arc::new(AppState::new(config.cache.clone()).with_access_log(config.log_requests));
        let stop = Arc::new(AtomicBool::new(false));
        let worker_count = config.workers.max(1);
        let queue = Arc::new(BoundedQueue::<Work>::new(config.queue_depth.max(1)));
        state.attach_pool(Arc::clone(&queue));

        if let Some(path) = &config.cache_file {
            if path.exists() {
                match state.cache.load(path) {
                    Ok(n) => eprintln!(
                        "tgp-serve warm-loaded {n} cache entries from {}",
                        path.display()
                    ),
                    Err(why) => eprintln!(
                        "tgp-serve ignoring cache file {}: {why} (booting cold)",
                        path.display()
                    ),
                }
            }
        }

        let workers = (0..worker_count)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                let max_body = config.max_body_bytes;
                let read_timeout = config.read_timeout;
                std::thread::Builder::new()
                    .name(format!("tgp-worker-{i}"))
                    .spawn(move || {
                        while let Some(work) = queue.pop() {
                            state.metrics.queue_changed(-1);
                            state.metrics.workers_changed(1);
                            match work {
                                Work::Conn(stream) => {
                                    serve_connection(&state, &stop, stream, max_body, read_timeout);
                                }
                                Work::Batch(subtask) => subtask.run(&state),
                            }
                            state.metrics.workers_changed(-1);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("tgp-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // Raise the gauge *before* the push: a worker may
                        // pop (and decrement) the instant the push lands,
                        // and increment-after would transiently wrap the
                        // gauge below zero.
                        state.metrics.queue_changed(1);
                        match queue.try_push(Work::Conn(stream)) {
                            Ok(()) => {}
                            Err(PushError::Full(Work::Conn(mut stream))) => {
                                state.metrics.queue_changed(-1);
                                state.metrics.record_overload();
                                let retry = retry_after_secs(queue.len(), worker_count);
                                let _ = stream.write_all(&overloaded_response(retry));
                                let _ = stream.flush();
                            }
                            Err(_) => {
                                // Closed (shutdown) — or a Full returning
                                // something other than what we pushed,
                                // which cannot happen.
                                state.metrics.queue_changed(-1);
                                break;
                            }
                        }
                    }
                    queue.close();
                })
                .expect("spawn acceptor")
        };

        let flusher = config.cache_file.clone().map(|path| {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let interval = config.cache_flush_interval.max(Duration::from_millis(50));
            std::thread::Builder::new()
                .name("tgp-cache-flusher".into())
                .spawn(move || {
                    let mut dumped_generation = state.cache.generation();
                    loop {
                        // Sleep in short steps so shutdown is never
                        // delayed by a long flush interval.
                        let mut slept = Duration::ZERO;
                        while slept < interval && !stop.load(Ordering::SeqCst) {
                            let step = Duration::from_millis(50).min(interval - slept);
                            std::thread::sleep(step);
                            slept += step;
                        }
                        let generation = state.cache.generation();
                        if generation != dumped_generation {
                            match state.cache.dump(&path) {
                                Ok(()) => dumped_generation = generation,
                                Err(e) => {
                                    eprintln!(
                                        "tgp-serve cache dump to {} failed: {e}",
                                        path.display()
                                    );
                                }
                            }
                        }
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                })
                .expect("spawn flusher")
        });

        Ok(Server {
            local_addr,
            state,
            stop,
            acceptor: Some(acceptor),
            workers,
            flusher,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Handler state, exposed for tests and embedding.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Blocks until the server stops (i.e. forever, unless another
    /// thread calls [`Server::shutdown`] or the acceptor dies).
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
    }

    /// Stops accepting, drains the queue, joins all threads, and (with
    /// a cache file configured) writes the final cache dump.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept()` with a throwaway connection; the acceptor
        // re-checks the stop flag before queueing it.
        let _ = TcpStream::connect(self.local_addr);
        self.wait();
    }
}

/// Serves keep-alive exchanges on one connection until it ends.
fn serve_connection(
    state: &AppState,
    stop: &AtomicBool,
    stream: TcpStream,
    max_body: usize,
    read_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);

    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match read_request(&mut reader, max_body) {
            Ok(request) => {
                let response = handle(state, &request);
                let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
                if write_response(
                    &mut write_half,
                    response.status,
                    response.content_type,
                    response.body.as_bytes(),
                    keep_alive,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Err(RecvError::Disconnected) => return,
            Err(RecvError::BadRequest(message)) => {
                let body = format!(
                    "{}\n",
                    json!({ "error": message.as_str(), "code": "bad_request" })
                );
                state.metrics.record_request("other", 400, Duration::ZERO);
                let _ = write_response(
                    &mut write_half,
                    400,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
            Err(RecvError::BodyTooLarge { declared, limit }) => {
                let message = format!("body of {declared} bytes exceeds limit of {limit}");
                let body = format!(
                    "{}\n",
                    json!({ "error": message, "code": "body_too_large" })
                );
                state.metrics.record_request("other", 413, Duration::ZERO);
                let _ = write_response(
                    &mut write_half,
                    413,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
        }
    }
}
