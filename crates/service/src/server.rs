//! The TCP transport: acceptor, bounded queue, worker pool, shutdown.
//!
//! One acceptor thread owns the listener. Each accepted connection is
//! pushed onto a [`BoundedQueue`]; when the queue is full the acceptor
//! immediately writes a canned 503 and closes — backpressure is shed at
//! the door rather than queued into unbounded latency. A fixed pool of
//! worker threads pops connections and serves HTTP/1.1 keep-alive
//! exchanges until the peer closes, errors, times out, or the server
//! shuts down.
//!
//! Shutdown: [`Server::shutdown`] raises a flag, connects to the
//! listener once to unblock `accept()`, closes the queue so idle workers
//! wake, and joins every thread. Workers notice the flag at their next
//! request boundary (bounded by the read timeout), so shutdown completes
//! in at most roughly one timeout interval.

use std::io::BufReader;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::api::{handle, AppState};
use crate::http::{overloaded_response, read_request, write_response, RecvError};
use crate::pool::{BoundedQueue, PushError};
use tgp_graph::json;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (port 0 picks an ephemeral
    /// port — useful for tests).
    pub addr: String,
    /// Number of worker threads.
    pub workers: usize,
    /// Total result-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Connections allowed to wait for a worker before the acceptor
    /// sheds load with 503.
    pub queue_depth: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Per-connection read timeout; also bounds shutdown latency.
    pub read_timeout: Duration,
    /// Write one structured access-log line per request to stderr
    /// (`tgp-access method=… path=… objective=… status=… micros=…`).
    pub log_requests: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".into(),
            workers: 4,
            cache_capacity: 1024,
            queue_depth: 64,
            max_body_bytes: 1 << 20, // 1 MiB
            read_timeout: Duration::from_secs(5),
            log_requests: false,
        }
    }
}

/// A running server; dropping it without [`Server::shutdown`] detaches
/// the threads (they keep serving until the process exits).
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor plus worker pool.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let state =
            Arc::new(AppState::new(config.cache_capacity).with_access_log(config.log_requests));
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::<TcpStream>::new(config.queue_depth.max(1)));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                let max_body = config.max_body_bytes;
                let read_timeout = config.read_timeout;
                std::thread::Builder::new()
                    .name(format!("tgp-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            state.metrics.queue_changed(-1);
                            state.metrics.workers_changed(1);
                            serve_connection(&state, &stop, stream, max_body, read_timeout);
                            state.metrics.workers_changed(-1);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("tgp-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // Raise the gauge *before* the push: a worker may
                        // pop (and decrement) the instant the push lands,
                        // and increment-after would transiently wrap the
                        // gauge below zero.
                        state.metrics.queue_changed(1);
                        match queue.try_push(stream) {
                            Ok(()) => {}
                            Err(PushError::Full(mut stream)) => {
                                state.metrics.queue_changed(-1);
                                state.metrics.record_overload();
                                let _ = stream.write_all(overloaded_response());
                                let _ = stream.flush();
                            }
                            Err(PushError::Closed(_)) => {
                                state.metrics.queue_changed(-1);
                                break;
                            }
                        }
                    }
                    queue.close();
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            local_addr,
            state,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Handler state, exposed for tests and embedding.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Blocks until the server stops (i.e. forever, unless another
    /// thread calls [`Server::shutdown`] or the acceptor dies).
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Stops accepting, drains the queue, and joins all threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept()` with a throwaway connection; the acceptor
        // re-checks the stop flag before queueing it.
        let _ = TcpStream::connect(self.local_addr);
        self.wait();
    }
}

/// Serves keep-alive exchanges on one connection until it ends.
fn serve_connection(
    state: &AppState,
    stop: &AtomicBool,
    stream: TcpStream,
    max_body: usize,
    read_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);

    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match read_request(&mut reader, max_body) {
            Ok(request) => {
                let response = handle(state, &request);
                let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
                if write_response(
                    &mut write_half,
                    response.status,
                    response.content_type,
                    response.body.as_bytes(),
                    keep_alive,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Err(RecvError::Disconnected) => return,
            Err(RecvError::BadRequest(message)) => {
                let body = format!("{}\n", json!({ "error": message.as_str() }));
                state.metrics.record_request("other", 400, Duration::ZERO);
                let _ = write_response(
                    &mut write_half,
                    400,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
            Err(RecvError::BodyTooLarge { declared, limit }) => {
                let message = format!("body of {declared} bytes exceeds limit of {limit}");
                let body = format!("{}\n", json!({ "error": message }));
                state.metrics.record_request("other", 413, Duration::ZERO);
                let _ = write_response(
                    &mut write_half,
                    413,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
        }
    }
}
