//! `tgp-service` — a concurrent, std-only HTTP service around the
//! partitioning solvers.
//!
//! The crate turns the batch CLI workflow into a long-lived server so
//! repeated partitioning queries (the common case in schedule tuning:
//! same graph, sweeping bounds; or same bound, many graphs) amortize
//! parsing and benefit from a result cache. Everything is built on
//! `std::net` + `std::thread` — no external dependencies, matching the
//! workspace's offline-build constraint.
//!
//! # Architecture
//!
//! ```text
//!  --io threads        accept()              BoundedQueue<Work>      pop()
//!  clients ──────────▶ acceptor thread ──▶ [conn|request|subtask] ─▶ worker pool ─▶ handlers
//!                                                   ▲ ▲ full?          │      ▲        │
//!  --io epoll          tgp-net event loop ──────────┘ └ 503+retry      │      │        │
//!  clients ──────────▶ (framing, timeouts,  ◀── LoopHandle::submit ────┘      │        │
//!                       partial writes)               batch scatter/gather ───┤        │
//!                                                                 ResultCache ┴────────┘
//! ```
//!
//! * [`server`] — the connection front-ends (thread-per-connection
//!   acceptor, or the `tgp-net` epoll event loop — see [`IoMode`]),
//!   bounded queue, worker pool, graceful shutdown ([`Server`],
//!   [`ServerConfig`]), plus cache persistence (warm load on boot,
//!   periodic flush, dump on shutdown).
//! * [`api`] — routing and the JSON handlers ([`AppState`]); batch
//!   requests scatter across the pool and gather in order.
//! * [`cache`] — sharded, byte-budgeted LRU over canonical request-byte
//!   keys, with optional TTL and dump/load persistence
//!   ([`CacheConfig`]).
//! * [`metrics`] — atomic counters rendered as Prometheus text.
//! * [`http`] — minimal HTTP/1.1 parsing/serialization.
//! * [`pool`] — the bounded MPMC work queue.
//!
//! # Endpoints
//!
//! | Route               | Method | Purpose                                        |
//! |---------------------|--------|------------------------------------------------|
//! | `/v1/partition`     | POST   | any objective in [`tgp_solvers::Registry`] (single or batch) |
//! | `/v1/simulate`      | POST   | partition + pipeline simulation                |
//! | `/healthz`          | GET    | liveness                                       |
//! | `/metrics`          | GET    | Prometheus text, incl. per-objective series    |
//!
//! The partition endpoint dispatches through the shared solver registry,
//! so it accepts exactly the same requests as `tgp partition` and
//! returns byte-identical JSON (see `docs/SERVICE.md` for the request
//! table).
//!
//! # Example
//!
//! ```
//! use tgp_service::{Server, ServerConfig};
//! use std::io::{Read, Write};
//!
//! let mut server = Server::start(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//!
//! let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
//! conn.write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
//!     .unwrap();
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200"));
//!
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
mod cache_journal;
pub mod envelope;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod server;

pub use api::AppState;
pub use cache::{CacheConfig, KeyBuilder, ResultCache};
pub use metrics::Metrics;
pub use server::{IoMode, Server, ServerConfig};
