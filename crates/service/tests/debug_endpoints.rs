//! End-to-end observability tests against a real server: a
//! client-supplied trace id is adopted and its span tree is served by
//! `GET /debug/trace/<id>` with stage durations that sum to at most
//! the reported total; `/debug/slow` and `/debug/events` answer JSON;
//! the `/debug/*` surfaces 404 when `debug_endpoints` is off; and
//! `/metrics` exports the per-stage histogram and journal series.
//! Everything runs under both `--io` modes (epoll where supported).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tgp_graph::json::Value;
use tgp_service::{IoMode, Server, ServerConfig};

fn modes() -> Vec<IoMode> {
    if cfg!(target_os = "linux") {
        vec![IoMode::Threads, IoMode::Epoll]
    } else {
        vec![IoMode::Threads]
    }
}

fn start(debug_endpoints: bool, io: IoMode) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        io,
        debug_endpoints,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

fn roundtrip(server: &Server, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    let text = String::from_utf8_lossy(&reply);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n")
}

fn post_with_headers(path: &str, extra_headers: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{extra_headers}connection: close\r\n\r\n{body}",
        body.len()
    )
}

const CHAIN: &str = r#"{"node_weights":[2,3,5,7,2,8],"edge_weights":[10,1,10,2,6]}"#;

fn partition_body() -> String {
    format!(r#"{{"objective":"bandwidth","bound":12,"graph":{CHAIN}}}"#)
}

/// Fetches `/debug/trace/<id>` until the asynchronously patched
/// `write` span shows up (the epoll loop reports it after the response
/// has flushed to the socket — which is after the client read it).
fn trace_with_write_span(server: &Server, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = roundtrip(server, &get(&format!("/debug/trace/{id}")));
        assert_eq!(status, 200, "trace {id} not found: {body}");
        let trace = Value::parse(&body).expect("trace JSON");
        let has_write = trace["spans"]
            .as_array()
            .expect("spans array")
            .iter()
            .any(|s| s["stage"].as_str() == Some("write"));
        if has_write {
            return trace;
        }
        assert!(
            Instant::now() < deadline,
            "write span never appeared for {id}: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn span_stages(trace: &Value) -> Vec<String> {
    trace["spans"]
        .as_array()
        .expect("spans array")
        .iter()
        .map(|s| s["stage"].as_str().expect("stage string").to_string())
        .collect()
}

#[test]
fn client_trace_id_is_adopted_and_served_with_span_tree() {
    for io in modes() {
        let mut server = start(true, io);
        let id = "00c0ffee0ddf00d1";
        let (status, _) = roundtrip(
            &server,
            &post_with_headers(
                "/v1/partition",
                &format!("x-trace-id: {id}\r\n"),
                &partition_body(),
            ),
        );
        assert_eq!(status, 200);

        let trace = trace_with_write_span(&server, id);
        assert_eq!(trace["trace"].as_str(), Some(id));
        assert_eq!(trace["endpoint"].as_str(), Some("partition"));
        assert_eq!(trace["objective"].as_str(), Some("bandwidth"));
        assert_eq!(trace["status"].as_u64(), Some(200));

        let stages = span_stages(&trace);
        for expected in ["queue", "parse", "cache", "solve", "serialize", "write"] {
            assert!(
                stages.iter().any(|s| s == expected),
                "{io:?}: stage {expected} missing from {stages:?}"
            );
        }

        // Stage durations account for at most the reported total.
        let total_us = trace["total_us"].as_u64().expect("total_us");
        let span_sum: u64 = trace["spans"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["dur_us"].as_u64().expect("dur_us"))
            .sum();
        assert!(
            span_sum <= total_us,
            "{io:?}: spans sum to {span_sum} us > total {total_us} us"
        );
        server.shutdown();
    }
}

#[test]
fn traceparent_header_is_adopted() {
    for io in modes() {
        let mut server = start(true, io);
        let traceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        let (status, _) = roundtrip(
            &server,
            &post_with_headers(
                "/v1/partition",
                &format!("traceparent: {traceparent}\r\n"),
                &partition_body(),
            ),
        );
        assert_eq!(status, 200);
        // The low 64 bits of the traceparent trace-id field.
        let (status, body) = roundtrip(&server, &get("/debug/trace/a3ce929d0e0e4736"));
        assert_eq!(status, 200, "{io:?}: {body}");
        server.shutdown();
    }
}

#[test]
fn debug_slow_and_events_answer_json() {
    for io in modes() {
        let mut server = start(true, io);
        for _ in 0..3 {
            let (status, _) = roundtrip(
                &server,
                &post_with_headers("/v1/partition", "", &partition_body()),
            );
            assert_eq!(status, 200);
        }

        let (status, body) = roundtrip(&server, &get("/debug/slow?n=2"));
        assert_eq!(status, 200);
        let slow = Value::parse(&body).expect("slow JSON");
        let traces = slow["traces"].as_array().expect("traces array");
        assert!(!traces.is_empty() && traces.len() <= 2, "{body}");
        // Slowest first.
        let totals: Vec<u64> = traces
            .iter()
            .map(|t| t["total_us"].as_u64().unwrap())
            .collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]), "{totals:?}");

        let (status, body) = roundtrip(&server, &get("/debug/events"));
        assert_eq!(status, 200);
        let events = Value::parse(&body).expect("events JSON");
        assert!(events["appended"].as_u64().unwrap() > 0);
        let kinds: Vec<&str> = events["events"]
            .as_array()
            .expect("events array")
            .iter()
            .map(|e| e["kind"].as_str().unwrap())
            .collect();
        assert!(
            kinds.contains(&"respond"),
            "{io:?}: no respond event in {kinds:?}"
        );
        assert!(
            kinds.contains(&"enqueue"),
            "{io:?}: no enqueue event in {kinds:?}"
        );
        server.shutdown();
    }
}

#[test]
fn debug_surfaces_are_404_when_disabled() {
    for io in modes() {
        let mut server = start(false, io);
        for path in ["/debug/trace/abc123", "/debug/slow", "/debug/events"] {
            let (status, _) = roundtrip(&server, &get(path));
            assert_eq!(status, 404, "{io:?}: {path} should be gated off");
        }
        server.shutdown();
    }
}

#[test]
fn unknown_trace_is_404_and_bad_id_is_400() {
    let mut server = start(true, IoMode::Threads);
    let (status, body) = roundtrip(&server, &get("/debug/trace/fefefefefefefefe"));
    assert_eq!(status, 404);
    assert!(body.contains("not_found"), "{body}");
    let (status, body) = roundtrip(&server, &get("/debug/trace/zzz"));
    assert_eq!(status, 400);
    assert!(body.contains("bad_request"), "{body}");
    server.shutdown();
}

#[test]
fn metrics_export_stage_histograms_and_journal_series() {
    for io in modes() {
        let mut server = start(false, io);
        let (status, _) = roundtrip(
            &server,
            &post_with_headers("/v1/partition", "", &partition_body()),
        );
        assert_eq!(status, 200);
        let (status, body) = roundtrip(&server, &get("/metrics"));
        assert_eq!(status, 200);
        for series in [
            "tgp_stage_latency_seconds_bucket",
            "tgp_stage_latency_seconds_count{stage=\"solve\"}",
            "tgp_request_latency_seconds_bucket",
            "tgp_journal_events_total",
            "tgp_journal_overwritten_total",
            "tgp_traces_retained",
        ] {
            assert!(body.contains(series), "{io:?}: {series} missing");
        }
        server.shutdown();
    }
}
