//! End-to-end tests against a real server on an ephemeral port:
//! concurrent clients, response correctness vs the solvers called
//! directly, cache behaviour observed through `/metrics`, batching, and
//! queue saturation. Tests run under both `--io` modes (epoll only
//! where supported) unless the scenario is mode-specific.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tgp_core::bottleneck::min_bottleneck_cut;
use tgp_core::pipeline::partition_chain;
use tgp_core::procmin::proc_min;
use tgp_graph::json::{FromJson, Value};
use tgp_graph::{PathGraph, Tree, Weight};
use tgp_service::{IoMode, Server, ServerConfig};

/// The io modes this target can run.
fn modes() -> Vec<IoMode> {
    if cfg!(target_os = "linux") {
        vec![IoMode::Threads, IoMode::Epoll]
    } else {
        vec![IoMode::Threads]
    }
}

fn start(config: ServerConfig) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind ephemeral port")
}

/// One complete HTTP exchange on a fresh connection.
fn roundtrip(server: &Server, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    parse_response(&reply)
}

fn parse_response(raw: &[u8]) -> (u16, String) {
    let text = String::from_utf8_lossy(raw);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n")
}

const CHAIN: &str = r#"{"node_weights":[2,3,5,7,2,8],"edge_weights":[10,1,10,2,6]}"#;
const TREE: &str = r#"{"node_weights":[1,2,3,4,5],"edges":[{"a":0,"b":1,"weight":10},{"a":0,"b":2,"weight":20},{"a":2,"b":3,"weight":30},{"a":2,"b":4,"weight":5}]}"#;

#[test]
fn health_and_metrics_respond() {
    for io in modes() {
        let mut server = start(ServerConfig {
            io,
            ..ServerConfig::default()
        });
        let (status, body) = roundtrip(&server, &get("/healthz"));
        assert_eq!(status, 200);
        assert!(body.contains("ok"));
        let (status, body) = roundtrip(&server, &get("/metrics"));
        assert_eq!(status, 200);
        assert!(body.contains("tgp_requests_total"));
        assert!(body.contains("tgp_open_connections"), "{body}");
        server.shutdown();
    }
}

#[test]
fn concurrent_mixed_clients_match_direct_solvers() {
    for io in modes() {
        concurrent_mixed_clients_in(io);
    }
}

fn concurrent_mixed_clients_in(io: IoMode) {
    let mut server = start(ServerConfig {
        io,
        workers: 4,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Direct solver answers to compare against.
    let chain = PathGraph::from_json(&Value::parse(CHAIN).unwrap()).unwrap();
    let tree = Tree::from_json(&Value::parse(TREE).unwrap()).unwrap();
    let chain_direct = partition_chain(&chain, Weight::new(12)).unwrap();
    let bottleneck_direct = min_bottleneck_cut(&tree, Weight::new(8)).unwrap();
    let procmin_direct = proc_min(&tree, Weight::new(8)).unwrap();

    let handles: Vec<_> = (0..12)
        .map(|i| {
            std::thread::spawn(move || {
                let (objective, bound) = match i % 3 {
                    0 => ("bandwidth", 12),
                    1 => ("bottleneck", 8),
                    _ => ("procmin", 8),
                };
                let graph = if objective == "bandwidth" {
                    CHAIN
                } else {
                    TREE
                };
                let body =
                    format!(r#"{{"objective":"{objective}","bound":{bound},"graph":{graph}}}"#);
                let request = post("/v1/partition", &body);
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                stream.write_all(request.as_bytes()).expect("send");
                let mut reply = Vec::new();
                stream.read_to_end(&mut reply).expect("receive");
                (i % 3, parse_response(&reply))
            })
        })
        .collect();

    for handle in handles {
        let (kind, (status, body)) = handle.join().expect("client thread");
        assert_eq!(status, 200, "{body}");
        let v = Value::parse(&body).unwrap();
        match kind {
            0 => {
                assert_eq!(
                    v["processors"].as_u64().unwrap() as usize,
                    chain_direct.processors
                );
                assert_eq!(
                    v["bandwidth"].as_u64().unwrap(),
                    chain_direct.bandwidth.get()
                );
                let cut: Vec<u64> = v["cut"]
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|e| e.as_u64().unwrap())
                    .collect();
                let expected: Vec<u64> =
                    chain_direct.cut.iter().map(|e| e.index() as u64).collect();
                assert_eq!(cut, expected);
            }
            1 => {
                assert_eq!(
                    v["bottleneck"].as_u64().unwrap(),
                    bottleneck_direct.bottleneck.get()
                );
            }
            _ => {
                assert_eq!(
                    v["processors"].as_u64().unwrap() as usize,
                    procmin_direct.component_count
                );
            }
        }
    }
    server.shutdown();
}

#[test]
fn repeated_request_is_a_cache_hit_per_metrics() {
    for io in modes() {
        repeated_request_cache_hit_in(io);
    }
}

fn repeated_request_cache_hit_in(io: IoMode) {
    let mut server = start(ServerConfig {
        io,
        ..ServerConfig::default()
    });
    let body = format!(r#"{{"objective":"bandwidth","bound":12,"graph":{CHAIN}}}"#);
    let (s1, b1) = roundtrip(&server, &post("/v1/partition", &body));
    let (s2, b2) = roundtrip(&server, &post("/v1/partition", &body));
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2);

    // Same content with shuffled keys and whitespace also hits.
    let reordered = format!(r#"{{ "bound": 12, "graph": {CHAIN}, "objective": "bandwidth" }}"#);
    let (s3, b3) = roundtrip(&server, &post("/v1/partition", &reordered));
    assert_eq!(s3, 200);
    assert_eq!(b1, b3);

    let (_, metrics) = roundtrip(&server, &get("/metrics"));
    let hits: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("tgp_cache_hits_total "))
        .unwrap()
        .parse()
        .unwrap();
    let misses: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("tgp_cache_misses_total "))
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(hits, 2, "second and third requests should hit:\n{metrics}");
    assert_eq!(misses, 1);
    server.shutdown();
}

#[test]
fn batch_mixes_results_and_errors() {
    let mut server = start(ServerConfig::default());
    let body = format!(
        r#"{{"requests":[
            {{"objective":"bandwidth","bound":12,"graph":{CHAIN}}},
            {{"objective":"bogus","bound":12,"graph":{CHAIN}}},
            {{"objective":"procmin","bound":8,"graph":{TREE}}}
        ]}}"#
    );
    let (status, body) = roundtrip(&server, &post("/v1/partition", &body));
    assert_eq!(status, 200, "{body}");
    let v = Value::parse(&body).unwrap();
    assert_eq!(v["completed"].as_u64(), Some(2), "{body}");
    assert_eq!(v["failed"].as_u64(), Some(1), "{body}");
    let results = v["results"].as_array().unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0]["index"].as_u64(), Some(0));
    assert_eq!(results[0]["status"].as_u64(), Some(200));
    assert!(results[0]["body"]["bandwidth"].as_u64().is_some());
    assert_eq!(results[1]["status"].as_u64(), Some(422));
    assert_eq!(
        results[1]["body"]["code"].as_str(),
        Some("unknown_objective")
    );
    assert!(results[1]["body"]["message"].as_str().is_some());
    assert_eq!(results[2]["index"].as_u64(), Some(2));
    assert!(results[2]["body"]["processors"].as_u64().is_some());
    server.shutdown();
}

#[test]
fn batch_compat_flag_returns_v1_shape_end_to_end() {
    let mut server = start(ServerConfig::default());
    let body = format!(
        r#"{{"requests":[
            {{"objective":"bandwidth","bound":12,"graph":{CHAIN}}},
            {{"objective":"bogus","bound":12,"graph":{CHAIN}}}
        ],"compat":true}}"#
    );
    let (status, body) = roundtrip(&server, &post("/v1/partition", &body));
    assert_eq!(status, 200, "{body}");
    let v = Value::parse(&body).unwrap();
    let results = v["results"].as_array().unwrap();
    assert_eq!(results.len(), 2);
    assert!(results[0]["bandwidth"].as_u64().is_some());
    assert!(results[1]["error"].as_str().is_some());
    assert!(
        v["completed"].as_u64().is_none(),
        "compat keeps v1 keys only"
    );
    server.shutdown();
}

#[test]
fn large_batch_fans_out_across_the_pool_in_order() {
    for io in modes() {
        large_batch_fans_out_in(io);
    }
}

fn large_batch_fans_out_in(io: IoMode) {
    let mut server = start(ServerConfig {
        io,
        workers: 4,
        ..ServerConfig::default()
    });
    let items: Vec<String> = (0..32)
        .map(|i| {
            format!(
                r#"{{"objective":"bandwidth","bound":{},"graph":{CHAIN}}}"#,
                12 + i
            )
        })
        .collect();
    let body = format!(r#"{{"requests":[{}]}}"#, items.join(","));
    let (status, body) = roundtrip(&server, &post("/v1/partition", &body));
    assert_eq!(status, 200, "{body}");
    let v = Value::parse(&body).unwrap();
    assert_eq!(v["completed"].as_u64(), Some(32), "{body}");
    assert_eq!(v["failed"].as_u64(), Some(0));
    let results = v["results"].as_array().unwrap();
    assert_eq!(results.len(), 32);
    for (i, item) in results.iter().enumerate() {
        assert_eq!(item["index"].as_u64(), Some(i as u64), "order preserved");
        assert_eq!(item["status"].as_u64(), Some(200));
        assert!(item["body"]["bandwidth"].as_u64().is_some());
    }

    // The scatter shows up in metrics: every subtask ran somewhere
    // (pool or inline when the queue was momentarily full).
    let (_, metrics) = roundtrip(&server, &get("/metrics"));
    let subtasks: u64 = metrics
        .lines()
        .filter_map(|l| l.strip_prefix("tgp_batch_subtasks_total"))
        .filter_map(|l| l.split_whitespace().last())
        .filter_map(|n| n.parse::<u64>().ok())
        .sum();
    assert_eq!(subtasks, 32, "{metrics}");
    server.shutdown();
}

#[test]
fn cache_file_round_trips_across_a_restart() {
    let path = std::env::temp_dir().join(format!("tgp-warm-restart-{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let body = format!(r#"{{"objective":"bandwidth","bound":12,"graph":{CHAIN}}}"#);

    let mut first = start(ServerConfig {
        cache_file: Some(path.clone()),
        ..ServerConfig::default()
    });
    let (s1, b1) = roundtrip(&first, &post("/v1/partition", &body));
    assert_eq!(s1, 200, "{b1}");
    first.shutdown(); // graceful shutdown writes the final dump

    let mut second = start(ServerConfig {
        cache_file: Some(path.clone()),
        ..ServerConfig::default()
    });
    let (s2, b2) = roundtrip(&second, &post("/v1/partition", &body));
    assert_eq!(s2, 200);
    assert_eq!(b1, b2, "warm entry serves the identical response");

    let (_, metrics) = roundtrip(&second, &get("/metrics"));
    let warm: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("tgp_cache_warm_loaded_total "))
        .unwrap()
        .parse()
        .unwrap();
    let hits: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("tgp_cache_hits_total "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(warm >= 1, "{metrics}");
    assert!(
        hits >= 1,
        "first request after restart should warm-hit:\n{metrics}"
    );
    second.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn simulate_endpoint_reports_pipeline_stats() {
    let mut server = start(ServerConfig::default());
    let body = format!(r#"{{"bound":12,"items":50,"graph":{CHAIN},"interconnect":"crossbar"}}"#);
    let (status, body) = roundtrip(&server, &post("/v1/simulate", &body));
    assert_eq!(status, 200, "{body}");
    let v = Value::parse(&body).unwrap();
    assert!(v["makespan"].as_u64().unwrap() > 0);
    assert!(v["throughput"].as_f64().unwrap() > 0.0);
    assert!(v["mean_utilization"].as_f64().unwrap() > 0.0);
    server.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    for io in modes() {
        let mut server = start(ServerConfig {
            io,
            ..ServerConfig::default()
        });
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        for _ in 0..3 {
            stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            assert!(status_line.starts_with("HTTP/1.1 200"), "{status_line}");
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if line.trim_end().is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
        }
        server.shutdown();
    }
}

#[test]
fn pipelined_requests_all_get_answers() {
    // Two requests written back-to-back before reading: the server must
    // answer both, in order, on the same connection.
    for io in modes() {
        let mut server = start(ServerConfig {
            io,
            ..ServerConfig::default()
        });
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
            )
            .unwrap();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply);
        assert_eq!(text.matches("HTTP/1.1 200").count(), 2, "io {io:?}: {text}");
        server.shutdown();
    }
}

#[test]
fn saturated_queue_gets_503_not_a_hang() {
    // 1 worker + depth-1 queue: one connection occupies the worker, one
    // waits in the queue, and the next connection must be shed with the
    // canned 503 immediately (not after a timeout). Pinned to threads
    // mode: the scenario relies on idle connections pinning workers,
    // which is exactly what epoll mode exists to avoid (there, idle
    // connections consume no worker and nothing queues).
    let mut server = start(ServerConfig {
        io: IoMode::Threads,
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Occupy the worker and the queue slot with idle connections: each
    // is accepted, then its worker blocks reading a request that never
    // arrives (until the read timeout).
    let hold_worker = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150)); // let it reach a worker
    let hold_queue = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150)); // let it enter the queue

    // Saturated: this connection must receive the canned 503.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read 503");
    let raw = String::from_utf8_lossy(&reply).to_ascii_lowercase();
    assert!(raw.contains("retry-after:"), "{raw}");
    let (status, body) = parse_response(&reply);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("overloaded"));
    assert!(body.contains(r#""code":"overloaded""#), "{body}");

    // The overload shows up in metrics once capacity frees up.
    drop(hold_worker);
    drop(hold_queue);
    std::thread::sleep(Duration::from_millis(150));
    let (_, metrics) = roundtrip(&server, &get("/metrics"));
    let rejected: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("tgp_rejected_overload_total "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(rejected >= 1, "{metrics}");
    server.shutdown();
}

#[test]
fn shutdown_joins_quickly() {
    for io in modes() {
        let mut server = start(ServerConfig {
            io,
            read_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        });
        let (status, _) = roundtrip(&server, &get("/healthz"));
        assert_eq!(status, 200);
        let started = std::time::Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "io {io:?}: shutdown took {:?}",
            started.elapsed()
        );
    }
}

#[test]
fn epoll_serves_more_persistent_connections_than_workers() {
    // The starvation scenario from EXPERIMENTS.md §SRV-OPEN: with 2
    // workers and 16 persistent connections, threads mode leaves 14
    // clients starving. Under epoll every connection must get answers,
    // because idle sockets cost no worker.
    if !cfg!(target_os = "linux") {
        return;
    }
    let mut server = start(ServerConfig {
        io: IoMode::Epoll,
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let clients: Vec<_> = (0..16)
        .map(|c| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut served = 0u32;
                for _ in 0..5 {
                    stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
                    let mut status_line = String::new();
                    reader.read_line(&mut status_line).unwrap();
                    assert!(
                        status_line.starts_with("HTTP/1.1 200"),
                        "client {c}: {status_line}"
                    );
                    let mut content_length = 0usize;
                    loop {
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        if line.trim_end().is_empty() {
                            break;
                        }
                        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                            content_length = v.trim().parse().unwrap();
                        }
                    }
                    let mut body = vec![0u8; content_length];
                    reader.read_exact(&mut body).unwrap();
                    served += 1;
                }
                served
            })
        })
        .collect();
    for client in clients {
        assert_eq!(client.join().expect("client thread"), 5);
    }
    // All 16 were open at once — visible to the event loop's gauge.
    let (_, metrics) = roundtrip(&server, &get("/metrics"));
    let wakeups: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("tgp_readiness_wakeups_total "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(wakeups > 0, "{metrics}");
    server.shutdown();
}
