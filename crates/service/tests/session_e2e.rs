//! End-to-end and property tests of the stateful session surface:
//! graphs registered once, mutated through PATCH edit batches, and
//! re-partitioned in place. The contract under test is byte-identity —
//! a session re-solve (warm or cold, the client cannot choose) must
//! return exactly the bytes a stateless `/v1/partition` of the same
//! edited graph returns. Every test keeps a client-side mirror of the
//! resident graph and checks the session answer against a scratch
//! solve of the mirror after every batch.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use tgp_graph::json::Value;
use tgp_service::api::{self, ApiResponse};
use tgp_service::http::Request;
use tgp_service::{AppState, CacheConfig, IoMode, Server, ServerConfig};
use tgp_session::SessionStore;

/// The `(io, loops)` configurations this target can run: threads,
/// single-loop epoll, and the sharded two-loop epoll runtime (sessions
/// are global state, so byte-identity must hold across loops too).
fn modes() -> Vec<(IoMode, usize)> {
    if cfg!(target_os = "linux") {
        vec![(IoMode::Threads, 1), (IoMode::Epoll, 1), (IoMode::Epoll, 2)]
    } else {
        vec![(IoMode::Threads, 1)]
    }
}

fn start(io: IoMode, loops: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        io,
        loops,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// One complete exchange on a fresh connection; returns the status,
/// the `x-tgp-solve` header when present (`true` = warm), and the body.
fn roundtrip(server: &Server, method: &str, path: &str, body: &str) -> (u16, Option<bool>, String) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    let text = String::from_utf8_lossy(&reply);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let warm = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("x-tgp-solve:")
                .map(str::trim)
                .map(String::from)
        })
        .map(|v| v == "warm");
    (status, warm, body.to_string())
}

/// A session-partition POST that also captures the `x-tgp-response`
/// header, so delta tests can assert which body shape was returned.
fn roundtrip_response_mode(
    server: &Server,
    path: &str,
    body: &str,
) -> (u16, Option<String>, String) {
    let request = format!(
        "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    let text = String::from_utf8_lossy(&reply);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let mode = head.lines().find_map(|l| {
        l.to_ascii_lowercase()
            .strip_prefix("x-tgp-response:")
            .map(str::trim)
            .map(String::from)
    });
    (status, mode, body.to_string())
}

/// Client-side delta application: substitute each changed field into the
/// previous full body (preserving the original field order) and
/// re-render. The result must match the server's full body exactly.
fn apply_delta(previous_full: &str, delta_body: &str) -> String {
    let delta = Value::parse(delta_body).expect("delta body is JSON");
    let Value::Object(changed) = delta["changed"].clone() else {
        panic!("delta body lacks a changed object: {delta_body}");
    };
    let mut prev = Value::parse(previous_full).expect("previous full body is JSON");
    let Value::Object(entries) = &mut prev else {
        panic!("previous full body is not an object: {previous_full}");
    };
    for (k, v) in changed {
        match entries.iter_mut().find(|(name, _)| *name == k) {
            Some((_, slot)) => *slot = v,
            None => entries.push((k, v)),
        }
    }
    format!("{prev}\n")
}

/// The client's mirror of one resident graph: what the session *should*
/// contain after every acked batch, rendered for scratch verification.
enum Mirror {
    Chain {
        node_weights: Vec<u64>,
        edge_weights: Vec<u64>,
    },
    Tree {
        node_weights: Vec<u64>,
        edges: Vec<(usize, usize, u64)>,
    },
}

impl Mirror {
    fn chain(node_weights: Vec<u64>, edge_weights: Vec<u64>) -> Mirror {
        assert_eq!(node_weights.len(), edge_weights.len() + 1);
        Mirror::Chain {
            node_weights,
            edge_weights,
        }
    }

    /// A deterministic caterpillar: node `i` hangs off `i - 1 - (i % 3)`.
    fn tree(node_weights: Vec<u64>, edge_weights: Vec<u64>) -> Mirror {
        assert_eq!(node_weights.len(), edge_weights.len() + 1);
        let edges = edge_weights
            .iter()
            .enumerate()
            .map(|(j, &w)| {
                let i = j + 1;
                (i - 1 - (i % 3).min(i - 1), i, w)
            })
            .collect();
        Mirror::Tree {
            node_weights,
            edges,
        }
    }

    fn objective(&self) -> &'static str {
        match self {
            Mirror::Chain { .. } => "lexicographic",
            Mirror::Tree { .. } => "bottleneck",
        }
    }

    fn node_count(&self) -> usize {
        match self {
            Mirror::Chain { node_weights, .. } | Mirror::Tree { node_weights, .. } => {
                node_weights.len()
            }
        }
    }

    fn edge_count(&self) -> usize {
        match self {
            Mirror::Chain { edge_weights, .. } => edge_weights.len(),
            Mirror::Tree { edges, .. } => edges.len(),
        }
    }

    /// Whether `remove_leaf` is currently legal: the last node must be
    /// a leaf and the graph must keep at least two nodes.
    fn can_remove_leaf(&self) -> bool {
        if self.node_count() <= 2 {
            return false;
        }
        match self {
            Mirror::Chain { .. } => true,
            Mirror::Tree {
                node_weights,
                edges,
            } => {
                let last = node_weights.len() - 1;
                edges
                    .iter()
                    .filter(|&&(a, b, _)| a == last || b == last)
                    .count()
                    == 1
            }
        }
    }

    fn graph_json(&self) -> String {
        fn join(v: &[u64]) -> String {
            v.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        }
        match self {
            Mirror::Chain {
                node_weights,
                edge_weights,
            } => format!(
                r#"{{"node_weights":[{}],"edge_weights":[{}]}}"#,
                join(node_weights),
                join(edge_weights)
            ),
            Mirror::Tree {
                node_weights,
                edges,
            } => {
                let rendered: Vec<String> = edges
                    .iter()
                    .map(|(a, b, w)| format!(r#"{{"a":{a},"b":{b},"weight":{w}}}"#))
                    .collect();
                format!(
                    r#"{{"node_weights":[{}],"edges":[{}]}}"#,
                    join(node_weights),
                    rendered.join(",")
                )
            }
        }
    }

    /// Turns one raw `(op, index, weight)` sample into a legal edit,
    /// applies it to the mirror, and returns its wire form. Samples
    /// that would be illegal in the current shape (removing a non-leaf,
    /// shrinking below two nodes, edge edits on an edgeless chain, a
    /// remove after an add in the same batch) are downgraded to
    /// vertex-weight edits so every generated batch is accepted by the
    /// server. `added_in_batch` tracks the add-then-remove restriction.
    fn apply(&mut self, op: u8, raw: usize, weight: u64, added_in_batch: &mut bool) -> String {
        let op = match op % 4 {
            1 if self.edge_count() == 0 => 0,
            3 if !self.can_remove_leaf() || *added_in_batch => 0,
            legal => legal,
        };
        if op == 2 {
            *added_in_batch = true;
        }
        match (op, &mut *self) {
            (0, Mirror::Chain { node_weights, .. }) | (0, Mirror::Tree { node_weights, .. }) => {
                let index = raw % node_weights.len();
                node_weights[index] = weight;
                format!(r#"{{"op":"vertex_weight","index":{index},"weight":{weight}}}"#)
            }
            (1, Mirror::Chain { edge_weights, .. }) => {
                let index = raw % edge_weights.len();
                edge_weights[index] = weight;
                format!(r#"{{"op":"edge_weight","index":{index},"weight":{weight}}}"#)
            }
            (1, Mirror::Tree { edges, .. }) => {
                let index = raw % edges.len();
                edges[index].2 = weight;
                format!(r#"{{"op":"edge_weight","index":{index},"weight":{weight}}}"#)
            }
            (
                2,
                Mirror::Chain {
                    node_weights,
                    edge_weights,
                },
            ) => {
                let edge = raw as u64 % 15 + 1;
                node_weights.push(weight);
                edge_weights.push(edge);
                format!(r#"{{"op":"add_leaf","node_weight":{weight},"edge_weight":{edge}}}"#)
            }
            (
                2,
                Mirror::Tree {
                    node_weights,
                    edges,
                },
            ) => {
                let attach = raw % node_weights.len();
                let edge = raw as u64 % 15 + 1;
                let new = node_weights.len();
                node_weights.push(weight);
                edges.push((attach, new, edge));
                format!(
                    r#"{{"op":"add_leaf","attach":{attach},"node_weight":{weight},"edge_weight":{edge}}}"#
                )
            }
            (
                3,
                Mirror::Chain {
                    node_weights,
                    edge_weights,
                },
            ) => {
                node_weights.pop();
                edge_weights.pop();
                r#"{"op":"remove_leaf"}"#.to_string()
            }
            (
                3,
                Mirror::Tree {
                    node_weights,
                    edges,
                },
            ) => {
                let last = node_weights.len() - 1;
                node_weights.pop();
                edges.retain(|&(a, b, _)| a != last && b != last);
                r#"{"op":"remove_leaf"}"#.to_string()
            }
            _ => unreachable!("op is reduced mod 4"),
        }
    }
}

/// Vertex weights stay below 10 and `add_leaf` weights below 10, so a
/// fixed bound of 16 keeps every generated instance feasible for both
/// objectives — the session answer and the scratch answer are always
/// 200s being compared, never error bodies.
const BOUND: u64 = 16;

/// xorshift64* — a tiny deterministic generator for the HTTP tests.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 16
    }
}

/// Registers the mirror as a resident graph and returns `(id, version)`.
fn register(server: &Server, mirror: &Mirror) -> (String, u64) {
    let (status, _, body) = roundtrip(
        server,
        "POST",
        "/v1/graphs",
        &format!(r#"{{"graph":{}}}"#, mirror.graph_json()),
    );
    assert_eq!(status, 200, "{body}");
    let v = Value::parse(&body).unwrap();
    (
        v["id"].as_str().unwrap().to_string(),
        v["version"].as_u64().unwrap(),
    )
}

/// One PATCH + session solve + scratch solve round; returns whether the
/// session solve reported a warm start.
fn patch_and_compare(
    server: &Server,
    id: &str,
    version: &mut u64,
    mirror: &mut Mirror,
    edits: &[String],
) -> bool {
    let patch = format!(r#"{{"version":{version},"edits":[{}]}}"#, edits.join(","));
    let (status, _, body) = roundtrip(server, "PATCH", &format!("/v1/graphs/{id}"), &patch);
    assert_eq!(status, 200, "patch {patch}: {body}");
    *version = Value::parse(&body).unwrap()["version"].as_u64().unwrap();

    let solve = format!(
        r#"{{"objective":"{}","bound":{BOUND}}}"#,
        mirror.objective()
    );
    let (status, warm, session_body) = roundtrip(
        server,
        "POST",
        &format!("/v1/graphs/{id}/partition"),
        &solve,
    );
    assert_eq!(status, 200, "{session_body}");
    let warm = warm.expect("session solve always reports x-tgp-solve");

    let scratch = format!(
        r#"{{"objective":"{}","bound":{BOUND},"graph":{}}}"#,
        mirror.objective(),
        mirror.graph_json()
    );
    let (status, _, scratch_body) = roundtrip(server, "POST", "/v1/partition", &scratch);
    assert_eq!(status, 200, "{scratch_body}");
    assert_eq!(
        session_body,
        scratch_body,
        "session ({}) vs scratch solve diverged after {} edits at version {version}",
        if warm { "warm" } else { "cold" },
        edits.len(),
    );
    warm
}

/// `"response": "delta"` answers with only the fields that changed
/// since the previous solve, and substituting them into the previous
/// full body reproduces the next full response byte for byte. The first
/// delta request (no baseline yet) falls back to the full body and says
/// so in `x-tgp-response`.
#[test]
fn delta_responses_reconstruct_to_the_full_body() {
    for (io, loops) in modes() {
        let mut server = start(io, loops);
        let mut rng = Rng(0xdeca_0007);
        let mut mirror = Mirror::chain(
            (0..24).map(|_| rng.next() % 9 + 1).collect(),
            (0..23).map(|_| rng.next() % 15 + 1).collect(),
        );
        let (id, mut version) = register(&server, &mirror);
        let path = format!("/v1/graphs/{id}/partition");
        let delta_solve = format!(
            r#"{{"objective":"{}","bound":{BOUND},"response":"delta"}}"#,
            mirror.objective()
        );

        // No baseline yet: the server answers full and labels it so.
        let (status, mode, mut full) = roundtrip_response_mode(&server, &path, &delta_solve);
        assert_eq!(status, 200, "{full}");
        assert_eq!(
            mode.as_deref(),
            Some("full"),
            "first delta request has no baseline ({io:?})"
        );

        for round in 0..6 {
            // Mutate the graph so consecutive solves can differ; ops
            // cover weight edits plus leaf adds/removes.
            let mut added = false;
            let edits: Vec<String> = (0..3)
                .map(|_| {
                    mirror.apply(
                        rng.next() as u8,
                        rng.next() as usize,
                        rng.next() % 9 + 1,
                        &mut added,
                    )
                })
                .collect();
            let patch = format!(r#"{{"version":{version},"edits":[{}]}}"#, edits.join(","));
            let (status, _, body) =
                roundtrip(&server, "PATCH", &format!("/v1/graphs/{id}"), &patch);
            assert_eq!(status, 200, "{body}");
            version = Value::parse(&body).unwrap()["version"].as_u64().unwrap();

            let (status, mode, delta) = roundtrip_response_mode(&server, &path, &delta_solve);
            assert_eq!(status, 200, "{delta}");
            assert_eq!(mode.as_deref(), Some("delta"), "round {round}: {delta}");
            let reconstructed = apply_delta(&full, &delta);

            // The reconstruction must match a scratch solve of the
            // mirrored graph byte for byte (scratch and session full
            // bodies are already pinned identical).
            let scratch = format!(
                r#"{{"objective":"{}","bound":{BOUND},"graph":{}}}"#,
                mirror.objective(),
                mirror.graph_json()
            );
            let (status, _, scratch_body) = roundtrip(&server, "POST", "/v1/partition", &scratch);
            assert_eq!(status, 200, "{scratch_body}");
            assert_eq!(
                reconstructed, scratch_body,
                "round {round} ({io:?}): delta reconstruction diverged\ndelta: {delta}"
            );
            full = reconstructed;
        }

        // An explicit "response":"full" and an absent field both answer
        // the full body; only the former carries the header.
        let full_solve = format!(
            r#"{{"objective":"{}","bound":{BOUND},"response":"full"}}"#,
            mirror.objective()
        );
        let (status, mode, explicit) = roundtrip_response_mode(&server, &path, &full_solve);
        assert_eq!(status, 200, "{explicit}");
        assert_eq!(mode.as_deref(), Some("full"));
        let plain_solve = format!(
            r#"{{"objective":"{}","bound":{BOUND}}}"#,
            mirror.objective()
        );
        let (status, mode, plain) = roundtrip_response_mode(&server, &path, &plain_solve);
        assert_eq!(status, 200, "{plain}");
        assert_eq!(mode, None, "no \"response\" field, no header ({io:?})");
        assert_eq!(explicit, plain);

        // Deleting the session also drops the delta baseline: a fresh
        // registration of the same graph starts from "full" again.
        let (status, _, body) = roundtrip(&server, "DELETE", &format!("/v1/graphs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let (id, _) = register(&server, &mirror);
        let (status, mode, body) =
            roundtrip_response_mode(&server, &format!("/v1/graphs/{id}/partition"), &delta_solve);
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            mode.as_deref(),
            Some("full"),
            "baseline must not survive session deletion ({io:?})"
        );
        server.shutdown();
    }
}

#[test]
fn chain_edge_edits_stay_warm_and_byte_identical() {
    for (io, loops) in modes() {
        let mut server = start(io, loops);
        let mut rng = Rng(0x5eed_0001);
        let mut mirror = Mirror::chain(
            (0..32).map(|_| rng.next() % 9 + 1).collect(),
            (0..31).map(|_| rng.next() % 15 + 1).collect(),
        );
        let (id, mut version) = register(&server, &mirror);

        let mut warm_solves = 0;
        for _ in 0..8 {
            // Edge-weight-only batches keep the previous solve's window
            // valid, so re-solves should warm-start.
            let mut added = false;
            let edits: Vec<String> = (0..4)
                .map(|_| mirror.apply(1, rng.next() as usize, rng.next() % 15 + 1, &mut added))
                .collect();
            if patch_and_compare(&server, &id, &mut version, &mut mirror, &edits) {
                warm_solves += 1;
            }
        }
        assert!(
            warm_solves >= 6,
            "io {io:?}: only {warm_solves}/8 edge-edit re-solves warm-started"
        );
        server.shutdown();
    }
}

#[test]
fn random_edit_batches_match_scratch_solves_over_http() {
    for (io, loops) in modes() {
        let mut server = start(io, loops);
        for (seed, tree) in [(0xaaaa_0001u64, false), (0xbbbb_0002, true)] {
            let mut rng = Rng(seed);
            let node_weights: Vec<u64> = (0..20).map(|_| rng.next() % 9 + 1).collect();
            let edge_weights: Vec<u64> = (0..19).map(|_| rng.next() % 15 + 1).collect();
            let mut mirror = if tree {
                Mirror::tree(node_weights, edge_weights)
            } else {
                Mirror::chain(node_weights, edge_weights)
            };
            let (id, mut version) = register(&server, &mirror);

            for _ in 0..10 {
                let batch = rng.next() as usize % 5 + 1;
                let mut added = false;
                let edits: Vec<String> = (0..batch)
                    .map(|_| {
                        mirror.apply(
                            rng.next() as u8,
                            rng.next() as usize,
                            rng.next() % 9 + 1,
                            &mut added,
                        )
                    })
                    .collect();
                patch_and_compare(&server, &id, &mut version, &mut mirror, &edits);
            }

            let (status, _, body) = roundtrip(&server, "DELETE", &format!("/v1/graphs/{id}"), "");
            assert_eq!(status, 200, "{body}");
        }
        server.shutdown();
    }
}

// ---------------------------------------------------------------------
// In-process property test: the same byte-identity contract, driven
// straight through the router so hundreds of random session histories
// stay cheap. Transport coverage comes from the HTTP tests above.
// ---------------------------------------------------------------------

fn app() -> AppState {
    AppState::new(CacheConfig::default()).with_sessions(Arc::new(SessionStore::new(1 << 24)))
}

fn dispatch(state: &AppState, method: &str, path: &str, body: &str) -> ApiResponse {
    api::handle(
        state,
        &Request {
            method: method.into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec().into(),
            keep_alive: false,
        },
    )
}

type RawEdit = (u8, usize, u64);

fn arb_session_history() -> impl Strategy<Value = (bool, Vec<u64>, Vec<u64>, Vec<Vec<RawEdit>>)> {
    (2usize..14).prop_flat_map(|n| {
        (
            any::<bool>(),
            prop::collection::vec(1u64..10, n),
            prop::collection::vec(1u64..16, n - 1),
            prop::collection::vec(
                prop::collection::vec((0u8..8, 0usize..1024, 1u64..10), 1..6),
                1..5,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any starting graph and any legal edit history, re-solving
    /// the resident session after each batch returns byte-for-byte the
    /// response a scratch solve of the edited graph returns.
    #[test]
    fn incremental_resolves_are_byte_identical_to_scratch(
        (tree, node_weights, edge_weights, batches) in arb_session_history()
    ) {
        let state = app();
        let mut mirror = if tree {
            Mirror::tree(node_weights, edge_weights)
        } else {
            Mirror::chain(node_weights, edge_weights)
        };
        let registered = dispatch(
            &state,
            "POST",
            "/v1/graphs",
            &format!(r#"{{"graph":{}}}"#, mirror.graph_json()),
        );
        prop_assert_eq!(registered.status, 200, "{}", registered.body);
        let v = Value::parse(&registered.body).unwrap();
        let id = v["id"].as_str().unwrap().to_string();
        let mut version = v["version"].as_u64().unwrap();

        for batch in &batches {
            let mut added = false;
            let edits: Vec<String> = batch
                .iter()
                .map(|&(op, raw, weight)| mirror.apply(op, raw, weight, &mut added))
                .collect();
            let patch = format!(
                r#"{{"version":{version},"edits":[{}]}}"#,
                edits.join(",")
            );
            let patched = dispatch(&state, "PATCH", &format!("/v1/graphs/{id}"), &patch);
            prop_assert_eq!(patched.status, 200, "patch {}: {}", patch, patched.body);
            version = Value::parse(&patched.body).unwrap()["version"].as_u64().unwrap();

            let solve = format!(
                r#"{{"objective":"{}","bound":{BOUND}}}"#,
                mirror.objective()
            );
            let session = dispatch(
                &state,
                "POST",
                &format!("/v1/graphs/{id}/partition"),
                &solve,
            );
            prop_assert_eq!(session.status, 200, "{}", session.body);

            let scratch_req = format!(
                r#"{{"objective":"{}","bound":{BOUND},"graph":{}}}"#,
                mirror.objective(),
                mirror.graph_json()
            );
            let scratch = dispatch(&state, "POST", "/v1/partition", &scratch_req);
            prop_assert_eq!(scratch.status, 200, "{}", scratch.body);
            prop_assert_eq!(&session.body, &scratch.body,
                "diverged at version {} on {}", version, mirror.graph_json());
        }
    }
}
