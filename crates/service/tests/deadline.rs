//! End-to-end deadline and cancellation tests: the `x-deadline-ms`
//! header (and per-item `deadline_ms` in batches) must turn into
//! 504 `deadline_exceeded` envelopes instead of wedged workers, the
//! `tgp_deadline_drops_total{where}` counters must advance, and —
//! critically — requests *without* deadlines must be byte-identical to
//! a server that never heard of the feature. Runs under both `--io`
//! modes where supported.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tgp_graph::json::Value;
use tgp_service::envelope::parse_envelope;
use tgp_service::{IoMode, Server, ServerConfig};

/// The `(io, loops)` configurations this target can run: threads,
/// single-loop epoll, and the sharded two-loop epoll runtime.
fn modes() -> Vec<(IoMode, usize)> {
    if cfg!(target_os = "linux") {
        vec![(IoMode::Threads, 1), (IoMode::Epoll, 1), (IoMode::Epoll, 2)]
    } else {
        vec![(IoMode::Threads, 1)]
    }
}

fn start(config: ServerConfig) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind ephemeral port")
}

/// One complete HTTP exchange on a fresh connection.
fn roundtrip(server: &Server, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request).expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    let text = String::from_utf8_lossy(&reply);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// POST with optional extra header lines (`name: value\r\n`).
fn post_with(path: &str, extra: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\n{extra}content-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n").into_bytes()
}

const CHAIN: &str = r#"{"node_weights":[2,3,5,7,2,8],"edge_weights":[10,1,10,2,6]}"#;

/// A chain large enough that its solve cannot finish inside a
/// single-digit-millisecond deadline, rendered as a request body.
fn huge_chain_body(nodes: usize) -> String {
    let node_weights: Vec<String> = (0..nodes).map(|i| ((i * 7) % 9 + 1).to_string()).collect();
    let edge_weights: Vec<String> = (0..nodes - 1)
        .map(|i| ((i * 5) % 17 + 1).to_string())
        .collect();
    format!(
        r#"{{"objective":"bandwidth","bound":{},"graph":{{"node_weights":[{}],"edge_weights":[{}]}}}}"#,
        4 * nodes / 3,
        node_weights.join(","),
        edge_weights.join(",")
    )
}

/// The sum of `tgp_deadline_drops_total` across all drop sites.
fn deadline_drops(server: &Server) -> u64 {
    let (status, metrics) = roundtrip(server, &get("/metrics"));
    assert_eq!(status, 200);
    metrics
        .lines()
        .filter(|l| l.starts_with("tgp_deadline_drops_total{"))
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("bad metric line {l:?}"))
        })
        .sum()
}

/// A request without a deadline header must not change by a byte when a
/// generous deadline is attached — deadline support is invisible until
/// a deadline actually bites.
#[test]
fn generous_deadline_is_byte_identical_to_no_deadline() {
    for (io, loops) in modes() {
        let mut server = start(ServerConfig {
            io,
            loops,
            ..ServerConfig::default()
        });
        let body = format!(r#"{{"objective":"bandwidth","bound":12,"graph":{CHAIN}}}"#);
        let (bare_status, bare) = roundtrip(&server, &post_with("/v1/partition", "", &body));
        let (dead_status, dead) = roundtrip(
            &server,
            &post_with("/v1/partition", "x-deadline-ms: 60000\r\n", &body),
        );
        assert_eq!(bare_status, 200, "{bare}");
        assert_eq!(dead_status, 200, "{dead}");
        assert_eq!(bare, dead, "deadline header changed a 200 body ({io:?})");
        server.shutdown();
    }
}

/// `x-deadline-ms: 0` is already expired on arrival: the work is
/// dropped — at the queue in epoll mode, at the solver's first budget
/// check in threads mode — with a stable 504 envelope, and the drop
/// counters advance.
#[test]
fn expired_deadline_is_dropped_with_a_504_envelope() {
    for (io, loops) in modes() {
        let mut server = start(ServerConfig {
            io,
            loops,
            ..ServerConfig::default()
        });
        let before = deadline_drops(&server);
        let body = format!(r#"{{"objective":"bandwidth","bound":12,"graph":{CHAIN}}}"#);
        let (status, reply) = roundtrip(
            &server,
            &post_with("/v1/partition", "x-deadline-ms: 0\r\n", &body),
        );
        assert_eq!(status, 504, "{io:?}: {reply}");
        let code = parse_envelope(reply.as_bytes()).expect("504 body is a v2 envelope");
        assert_eq!(code, "deadline_exceeded", "{reply}");
        let v = Value::parse(&reply).unwrap();
        assert_eq!(v["deadline_remaining_ms"].as_u64(), Some(0), "{reply}");
        assert!(
            deadline_drops(&server) > before,
            "{io:?}: tgp_deadline_drops_total did not advance"
        );
        server.shutdown();
    }
}

/// A malformed deadline header is a 400, not a silent ignore.
#[test]
fn malformed_deadline_header_is_rejected() {
    let mut server = start(ServerConfig::default());
    let body = format!(r#"{{"objective":"bandwidth","bound":12,"graph":{CHAIN}}}"#);
    let (status, reply) = roundtrip(
        &server,
        &post_with("/v1/partition", "x-deadline-ms: soon\r\n", &body),
    );
    assert_eq!(status, 400, "{reply}");
    assert_eq!(
        parse_envelope(reply.as_bytes()).as_deref(),
        Ok("bad_request"),
        "{reply}"
    );
    server.shutdown();
}

/// A solve too large for its deadline is cancelled cooperatively
/// mid-run — the solver's budget check fires, the request answers 504,
/// and the worker moves on (proved by the follow-up request). Both io
/// modes.
#[test]
fn mid_solve_cancellation_frees_the_worker() {
    for (io, loops) in modes() {
        let mut server = start(ServerConfig {
            io,
            loops,
            max_body_bytes: 16 << 20,
            ..ServerConfig::default()
        });
        let before = deadline_drops(&server);
        let huge = huge_chain_body(400_000);
        let (status, reply) = roundtrip(
            &server,
            &post_with("/v1/partition", "x-deadline-ms: 2\r\n", &huge),
        );
        assert_eq!(status, 504, "{io:?}: {}", &reply[..reply.len().min(300)]);
        assert_eq!(
            parse_envelope(reply.as_bytes()).as_deref(),
            Ok("deadline_exceeded"),
            "{reply}"
        );
        assert!(
            deadline_drops(&server) > before,
            "{io:?}: tgp_deadline_drops_total did not advance"
        );
        // The worker that cancelled is free to serve again.
        let small = format!(r#"{{"objective":"bandwidth","bound":12,"graph":{CHAIN}}}"#);
        let (status, reply) = roundtrip(&server, &post_with("/v1/partition", "", &small));
        assert_eq!(status, 200, "{reply}");
        server.shutdown();
    }
}

/// A batch whose items carry their own `deadline_ms` answers 200 with
/// per-item outcomes: expired items come back as 504 envelopes marked
/// `partial`, and the batch top level carries the partial marker too.
#[test]
fn batch_items_with_expired_deadlines_yield_partial_results() {
    let mut server = start(ServerConfig::default());
    let before = deadline_drops(&server);
    let body = format!(
        r#"{{"requests":[
            {{"objective":"bandwidth","bound":12,"graph":{CHAIN}}},
            {{"objective":"bandwidth","bound":12,"deadline_ms":0,"graph":{CHAIN}}}
        ]}}"#
    );
    let (status, reply) = roundtrip(&server, &post_with("/v1/partition", "", &body));
    assert_eq!(status, 200, "{reply}");
    let v = Value::parse(&reply).unwrap();
    assert_eq!(v["completed"].as_u64(), Some(1), "{reply}");
    assert_eq!(v["failed"].as_u64(), Some(1), "{reply}");
    assert_eq!(v["partial"].as_bool(), Some(true), "{reply}");
    let results = v["results"].as_array().unwrap();
    assert_eq!(results[0]["status"].as_u64(), Some(200));
    assert!(results[0]["body"]["bandwidth"].as_u64().is_some());
    assert_eq!(results[1]["status"].as_u64(), Some(504), "{reply}");
    assert_eq!(
        results[1]["body"]["code"].as_str(),
        Some("deadline_exceeded"),
        "{reply}"
    );
    assert_eq!(results[1]["body"]["partial"].as_bool(), Some(true));
    assert!(
        deadline_drops(&server) > before,
        "batch drop did not advance tgp_deadline_drops_total"
    );
    server.shutdown();
}

/// A batch with no deadlines keeps the exact v2 envelope shape of the
/// previous release: no `partial` key appears anywhere.
#[test]
fn batch_without_deadlines_has_no_partial_marker() {
    let mut server = start(ServerConfig::default());
    let body = format!(
        r#"{{"requests":[
            {{"objective":"bandwidth","bound":12,"graph":{CHAIN}}},
            {{"objective":"bogus","bound":12,"graph":{CHAIN}}}
        ]}}"#
    );
    let (status, reply) = roundtrip(&server, &post_with("/v1/partition", "", &body));
    assert_eq!(status, 200, "{reply}");
    assert!(!reply.contains("\"partial\""), "{reply}");
    let v = Value::parse(&reply).unwrap();
    assert_eq!(v["completed"].as_u64(), Some(1));
    assert_eq!(v["failed"].as_u64(), Some(1));
    server.shutdown();
}

/// The four drop sites are always rendered (even at zero) so
/// dashboards can rate() them from the first scrape.
#[test]
fn metrics_render_every_drop_site() {
    let mut server = start(ServerConfig::default());
    let (status, metrics) = roundtrip(&server, &get("/metrics"));
    assert_eq!(status, 200);
    for site in ["admission", "queue", "parse", "solve", "batch"] {
        assert!(
            metrics.contains(&format!("tgp_deadline_drops_total{{where=\"{site}\"}}")),
            "missing drop site {site}: {metrics}"
        );
    }
    server.shutdown();
}

/// Session solves honor deadlines too: an expired deadline on the
/// resident-graph partition route answers 504 without touching the
/// resident state.
#[test]
fn session_partition_honors_deadlines() {
    let mut server = start(ServerConfig::default());
    let (status, reply) = roundtrip(
        &server,
        &post_with("/v1/graphs", "", &format!(r#"{{"graph":{CHAIN}}}"#)),
    );
    assert_eq!(status, 200, "{reply}");
    let id = Value::parse(&reply).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let solve = r#"{"objective":"bandwidth","bound":12}"#;
    let path = format!("/v1/graphs/{id}/partition");
    let (status, reply) = roundtrip(&server, &post_with(&path, "x-deadline-ms: 0\r\n", solve));
    assert_eq!(status, 504, "{reply}");
    assert_eq!(
        parse_envelope(reply.as_bytes()).as_deref(),
        Ok("deadline_exceeded"),
        "{reply}"
    );
    // The session is intact and solvable without a deadline.
    let (status, reply) = roundtrip(&server, &post_with(&path, "", solve));
    assert_eq!(status, 200, "{reply}");
    server.shutdown();
}
