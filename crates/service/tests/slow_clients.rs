//! Slow and half-dead clients: a connection that trickles bytes, stalls
//! mid-upload, or stops reading must be reclaimed by the server's
//! timeouts — with the close attributed to the right
//! `tgp_timeout_closes_total{kind=...}` series — while well-behaved
//! half-closes still get their full response. Every scenario runs under
//! both `--io` modes (epoll only where supported), since each mode
//! enforces the deadlines differently: the event loop with a timer
//! wheel, the thread front-end with socket deadlines.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use tgp_service::{IoMode, Server, ServerConfig};

/// The io modes this target can run.
fn modes() -> Vec<IoMode> {
    if cfg!(target_os = "linux") {
        vec![IoMode::Threads, IoMode::Epoll]
    } else {
        vec![IoMode::Threads]
    }
}

/// A server with deliberately short deadlines so slow-client tests run
/// in milliseconds, not minutes.
fn start(io: IoMode) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        io,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Scrapes `/metrics` and returns the value of `series` (exact prefix
/// match including labels, e.g. `tgp_timeout_closes_total{kind="read"}`).
fn scrape(server: &Server, series: &str) -> u64 {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect for scrape");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n")
        .expect("send scrape");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read scrape");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(series) {
            if let Ok(v) = rest.trim().parse() {
                return v;
            }
        }
    }
    panic!("series {series:?} not found in /metrics:\n{text}");
}

/// Polls `series` until it reaches at least `want` or five seconds
/// pass; timeouts fire on the server's clock, not ours, so asserting a
/// single post-sleep scrape would race.
fn wait_for_at_least(server: &Server, series: &str, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let got = scrape(server, series);
        if got >= want || Instant::now() > deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

const READ_SERIES: &str = "tgp_timeout_closes_total{kind=\"read\"}";
const IDLE_SERIES: &str = "tgp_timeout_closes_total{kind=\"idle\"}";

#[test]
fn slowloris_head_is_reclaimed_by_the_read_timeout() {
    for io in modes() {
        let mut server = start(io);
        let before = scrape(&server, READ_SERIES);

        // Trickle a request head one byte at a time, far slower than
        // the read deadline allows. The deadline is a *total* budget
        // per request, so steady progress must not reset it — that is
        // the whole slowloris defense.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let head = b"GET /healthz HTTP/1.1\r\nx-slow: aaaaaaaaaaaaaaaa\r\n";
        for &byte in head {
            if stream.write_all(&[byte]).is_err() {
                break; // server already reclaimed the connection
            }
            std::thread::sleep(Duration::from_millis(25));
        }

        let after = wait_for_at_least(&server, READ_SERIES, before + 1);
        assert!(
            after > before,
            "[{io:?}] slowloris head never tripped the read timeout ({before} -> {after})"
        );
        // The reclaimed socket must actually be dead: draining it
        // yields EOF (or an error), never a response.
        let mut sink = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let drained = stream.read_to_end(&mut sink);
        assert!(
            drained.is_err() || sink.is_empty(),
            "[{io:?}] got bytes from a timed-out connection: {:?}",
            String::from_utf8_lossy(&sink)
        );
        server.shutdown();
    }
}

#[test]
fn mid_body_stall_is_reclaimed_by_the_read_timeout() {
    for io in modes() {
        let mut server = start(io);
        let before = scrape(&server, READ_SERIES);

        // A complete head declaring 100 bytes, then 10 bytes, then
        // silence: the server must not hold the worker (threads) or the
        // connection slot (epoll) past the read deadline.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(b"POST /v1/partition HTTP/1.1\r\ncontent-length: 100\r\n\r\n{\"a\": 1}")
            .expect("send partial body");

        let after = wait_for_at_least(&server, READ_SERIES, before + 1);
        assert!(
            after > before,
            "[{io:?}] stalled body never tripped the read timeout ({before} -> {after})"
        );
        drop(stream);
        server.shutdown();
    }
}

#[test]
fn half_close_after_the_request_still_gets_the_full_response() {
    for io in modes() {
        let mut server = start(io);

        // Shutting down the write side after the request is a legal
        // HTTP idiom ("I have nothing more to say"), not a disconnect:
        // the response must still arrive in full.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
            .expect("send request");
        stream.shutdown(Shutdown::Write).expect("half-close");

        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).expect("read response");
        let text = String::from_utf8_lossy(&reply);
        assert!(
            text.starts_with("HTTP/1.1 200"),
            "[{io:?}] half-closed client got: {text:?}"
        );
        assert!(text.contains("\"status\""), "[{io:?}] truncated: {text:?}");
        server.shutdown();
    }
}

#[test]
fn quiet_keepalive_connection_is_reaped() {
    for io in modes() {
        let mut server = start(io);
        let series = match io {
            // The event loop distinguishes idle keep-alive quiet from a
            // mid-request stall; the thread front-end folds idle time
            // into the next request's read deadline.
            IoMode::Epoll => IDLE_SERIES,
            IoMode::Threads => READ_SERIES,
        };
        let before = scrape(&server, series);

        // One full exchange, then silence on the kept-alive socket.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("send request");
        let mut buf = [0u8; 1024];
        let n = stream.read(&mut buf).expect("read response");
        assert!(
            String::from_utf8_lossy(&buf[..n]).starts_with("HTTP/1.1 200"),
            "[{io:?}] first exchange failed"
        );

        let after = wait_for_at_least(&server, series, before + 1);
        assert!(
            after > before,
            "[{io:?}] quiet keep-alive connection never reaped ({series}: {before} -> {after})"
        );
        // The server must have closed its end: draining the socket
        // (the first read above may have been short) ends in EOF
        // rather than our 10 s client timeout.
        let mut residue = Vec::new();
        let eof = stream.read_to_end(&mut residue);
        assert!(
            eof.is_ok(),
            "[{io:?}] socket still open after idle reap: {eof:?}"
        );
        drop(stream);
        server.shutdown();
    }
}
