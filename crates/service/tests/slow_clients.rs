//! Slow and half-dead clients: a connection that trickles bytes, stalls
//! mid-upload, or stops reading must be reclaimed by the server's
//! timeouts — with the close attributed to the right
//! `tgp_timeout_closes_total{kind=...}` series — while well-behaved
//! half-closes still get their full response. Every scenario runs under
//! both `--io` modes (epoll only where supported), since each mode
//! enforces the deadlines differently: the event loop with a timer
//! wheel, the thread front-end with socket deadlines.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use tgp_service::{IoMode, Server, ServerConfig};

/// The io modes this target can run.
fn modes() -> Vec<IoMode> {
    if cfg!(target_os = "linux") {
        vec![IoMode::Threads, IoMode::Epoll]
    } else {
        vec![IoMode::Threads]
    }
}

/// A server with deliberately short deadlines so slow-client tests run
/// in milliseconds, not minutes.
fn start(io: IoMode) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        io,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Scrapes `/metrics` and returns the value of `series` (exact prefix
/// match including labels, e.g. `tgp_timeout_closes_total{kind="read"}`).
fn scrape(server: &Server, series: &str) -> u64 {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect for scrape");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n")
        .expect("send scrape");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read scrape");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(series) {
            if let Ok(v) = rest.trim().parse() {
                return v;
            }
        }
    }
    panic!("series {series:?} not found in /metrics:\n{text}");
}

/// Polls `series` until it reaches at least `want` or `patience` runs
/// out; timeouts fire on the server's clock, not ours, so asserting a
/// single post-sleep scrape would race.
fn wait_for_at_least(server: &Server, series: &str, want: u64, patience: Duration) -> u64 {
    let deadline = Instant::now() + patience;
    loop {
        let got = scrape(server, series);
        if got >= want || Instant::now() > deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

const READ_SERIES: &str = "tgp_timeout_closes_total{kind=\"read\"}";
const IDLE_SERIES: &str = "tgp_timeout_closes_total{kind=\"idle\"}";
const WRITE_SERIES: &str = "tgp_timeout_closes_total{kind=\"write\"}";

/// A request whose response is far bigger than the kernel's socket
/// buffers (an all-nines chain under bound 9 cuts every edge, so the
/// `cut` array carries one index per edge), forcing the epoll loop to
/// park the connection mid-write — the only state in which the write
/// deadline matters at all.
fn huge_response_request(nodes: usize) -> Vec<u8> {
    let node_weights = vec!["9"; nodes].join(",");
    let edge_weights = vec!["1"; nodes - 1].join(",");
    let body = format!(
        r#"{{"objective":"bandwidth","bound":9,"graph":{{"node_weights":[{node_weights}],"edge_weights":[{edge_weights}]}}}}"#
    );
    format!(
        "POST /v1/partition HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A server tuned for the write-deadline scenarios: a short write
/// window with the progress floor at its default (1024 bytes per
/// window), a read deadline long enough to upload the multi-megabyte
/// request, and a body cap that admits it.
fn start_for_write_deadline() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        io: IoMode::Epoll,
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_secs(10),
        max_body_bytes: 32 << 20,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// ~900k cut indices ≈ 6 MB of response JSON: comfortably past the
/// ~4 MB the kernel will buffer for an unread loopback socket.
const HUGE_NODES: usize = 900_000;

#[test]
#[cfg(target_os = "linux")]
fn stalled_reader_is_reclaimed_by_the_write_deadline() {
    let mut server = start_for_write_deadline();
    let before = scrape(&server, WRITE_SERIES);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(&huge_response_request(HUGE_NODES))
        .expect("send request");
    // Never read: the response fills the socket buffers and stops
    // making progress, so the write deadline must fire even though the
    // first window saw plenty of progress (the buffer fill). The close
    // lands within two windows: one that renews on the fill, one that
    // sees no progress.
    // Generous patience: under a full parallel test run on one core
    // the ~900k-node debug solve alone can take tens of seconds
    // before the first response byte is written.
    let after = wait_for_at_least(&server, WRITE_SERIES, before + 1, Duration::from_secs(120));
    assert!(
        after > before,
        "stalled reader never tripped the write timeout ({before} -> {after})"
    );
    drop(stream);
    server.shutdown();
}

#[test]
#[cfg(target_os = "linux")]
fn slow_but_live_reader_survives_the_write_deadline() {
    let mut server = start_for_write_deadline();
    let before = scrape(&server, WRITE_SERIES);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Patience matches the stalled-reader test: the first byte only
    // arrives once the huge solve finishes, which can take tens of
    // seconds when the whole suite shares one core.
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
        .write_all(&huge_response_request(HUGE_NODES))
        .expect("send request");

    // Drain the response in small sips with deliberate pauses: far
    // slower than one write-timeout window end to end, but each window
    // sees well over `write_min_bytes` of progress, so the deadline
    // keeps renewing. Under the legacy *total* write deadline this
    // reader would be cut off mid-body.
    let started = Instant::now();
    let mut response = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                response.extend_from_slice(&chunk[..n]);
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("read failed after {} bytes: {e}", response.len()),
        }
    }
    let elapsed = started.elapsed();

    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response head");
    let head = String::from_utf8_lossy(&response[..head_end]);
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "slow reader got: {}",
        &head[..head.len().min(200)]
    );
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length header")
        .trim()
        .parse()
        .expect("numeric content-length");
    assert_eq!(
        response.len() - head_end - 4,
        declared,
        "body truncated mid-write"
    );
    assert!(
        elapsed > Duration::from_millis(600),
        "response drained too fast ({elapsed:?}) to exercise deadline renewal; \
         grow HUGE_NODES"
    );
    assert_eq!(
        scrape(&server, WRITE_SERIES),
        before,
        "a live (if slow) reader was charged a write-timeout close"
    );
    server.shutdown();
}

#[test]
fn slowloris_head_is_reclaimed_by_the_read_timeout() {
    for io in modes() {
        let mut server = start(io);
        let before = scrape(&server, READ_SERIES);

        // Trickle a request head one byte at a time, far slower than
        // the read deadline allows. The deadline is a *total* budget
        // per request, so steady progress must not reset it — that is
        // the whole slowloris defense.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let head = b"GET /healthz HTTP/1.1\r\nx-slow: aaaaaaaaaaaaaaaa\r\n";
        for &byte in head {
            if stream.write_all(&[byte]).is_err() {
                break; // server already reclaimed the connection
            }
            std::thread::sleep(Duration::from_millis(25));
        }

        let after = wait_for_at_least(&server, READ_SERIES, before + 1, Duration::from_secs(5));
        assert!(
            after > before,
            "[{io:?}] slowloris head never tripped the read timeout ({before} -> {after})"
        );
        // The reclaimed socket must actually be dead: draining it
        // yields EOF (or an error), never a response.
        let mut sink = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let drained = stream.read_to_end(&mut sink);
        assert!(
            drained.is_err() || sink.is_empty(),
            "[{io:?}] got bytes from a timed-out connection: {:?}",
            String::from_utf8_lossy(&sink)
        );
        server.shutdown();
    }
}

#[test]
fn mid_body_stall_is_reclaimed_by_the_read_timeout() {
    for io in modes() {
        let mut server = start(io);
        let before = scrape(&server, READ_SERIES);

        // A complete head declaring 100 bytes, then 10 bytes, then
        // silence: the server must not hold the worker (threads) or the
        // connection slot (epoll) past the read deadline.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(b"POST /v1/partition HTTP/1.1\r\ncontent-length: 100\r\n\r\n{\"a\": 1}")
            .expect("send partial body");

        let after = wait_for_at_least(&server, READ_SERIES, before + 1, Duration::from_secs(5));
        assert!(
            after > before,
            "[{io:?}] stalled body never tripped the read timeout ({before} -> {after})"
        );
        drop(stream);
        server.shutdown();
    }
}

#[test]
fn half_close_after_the_request_still_gets_the_full_response() {
    for io in modes() {
        let mut server = start(io);

        // Shutting down the write side after the request is a legal
        // HTTP idiom ("I have nothing more to say"), not a disconnect:
        // the response must still arrive in full.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
            .expect("send request");
        stream.shutdown(Shutdown::Write).expect("half-close");

        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).expect("read response");
        let text = String::from_utf8_lossy(&reply);
        assert!(
            text.starts_with("HTTP/1.1 200"),
            "[{io:?}] half-closed client got: {text:?}"
        );
        assert!(text.contains("\"status\""), "[{io:?}] truncated: {text:?}");
        server.shutdown();
    }
}

#[test]
fn quiet_keepalive_connection_is_reaped() {
    for io in modes() {
        let mut server = start(io);
        let series = match io {
            // The event loop distinguishes idle keep-alive quiet from a
            // mid-request stall; the thread front-end folds idle time
            // into the next request's read deadline.
            IoMode::Epoll => IDLE_SERIES,
            IoMode::Threads => READ_SERIES,
        };
        let before = scrape(&server, series);

        // One full exchange, then silence on the kept-alive socket.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("send request");
        let mut buf = [0u8; 1024];
        let n = stream.read(&mut buf).expect("read response");
        assert!(
            String::from_utf8_lossy(&buf[..n]).starts_with("HTTP/1.1 200"),
            "[{io:?}] first exchange failed"
        );

        let after = wait_for_at_least(&server, series, before + 1, Duration::from_secs(5));
        assert!(
            after > before,
            "[{io:?}] quiet keep-alive connection never reaped ({series}: {before} -> {after})"
        );
        // The server must have closed its end: draining the socket
        // (the first read above may have been short) ends in EOF
        // rather than our 10 s client timeout.
        let mut residue = Vec::new();
        let eof = stream.read_to_end(&mut residue);
        assert!(
            eof.is_ok(),
            "[{io:?}] socket still open after idle reap: {eof:?}"
        );
        drop(stream);
        server.shutdown();
    }
}
