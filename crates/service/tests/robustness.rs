//! Hostile-input tests: malformed, truncated and oversized requests must
//! produce structured 4xx responses — never a panic, never a hang — and
//! the server must keep serving afterwards. Every test runs under both
//! `--io` modes (epoll only where supported), since the two front-ends
//! share a parser but frame bytes differently.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tgp_service::{IoMode, Server, ServerConfig};

/// The io modes this target can run.
fn modes() -> Vec<IoMode> {
    if cfg!(target_os = "linux") {
        vec![IoMode::Threads, IoMode::Epoll]
    } else {
        vec![IoMode::Threads]
    }
}

/// Runs `test` against a fresh server in each supported io mode.
fn for_each_mode(test: impl Fn(&Server)) {
    for io in modes() {
        let mut server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            io,
            max_body_bytes: 4096,
            read_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port");
        test(&server);
        server.shutdown();
    }
}

fn send_raw(server: &Server, raw: &[u8]) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The server may reject (and close) mid-upload — e.g. an oversized
    // head — so a failed send is a valid outcome, not a test error.
    if stream.write_all(raw).is_err() {
        return None;
    }
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).ok()?;
    if reply.is_empty() {
        return None;
    }
    let text = String::from_utf8_lossy(&reply);
    let status: u16 = text.split_whitespace().nth(1)?.parse().ok()?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Some((status, body))
}

fn post_json(body: &str) -> Vec<u8> {
    format!(
        "POST /v1/partition HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn assert_alive(server: &Server) {
    let reply = send_raw(
        server,
        b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    )
    .expect("server should still answer");
    assert_eq!(reply.0, 200, "server unhealthy after hostile input");
}

#[test]
fn malformed_json_bodies_get_structured_400() {
    for_each_mode(|server| {
        let nested = "[".repeat(500) + &"]".repeat(500);
        let bodies = [
            "",
            "{",
            "}",
            "[1,2",
            "nul",
            "{\"objective\":}",
            "{\"objective\": \"bandwidth\", \"bound\": 1e999, \"graph\": {}}",
            "{\"objective\": \"bandwidth\" \"bound\": 1}",
            "\u{1}\u{2}\u{3}",
            // Deeply nested arrays exceed the parser's depth limit.
            nested.as_str(),
        ];
        for body in bodies {
            let (status, reply) = send_raw(server, &post_json(body)).expect("got a response");
            assert_eq!(status, 400, "body {body:?} → {reply}");
            assert!(
                reply.contains("\"code\":\"bad_request\"") && reply.contains("\"message\""),
                "body {body:?} lacked a structured v2 envelope: {reply}"
            );
        }
        assert_alive(server);
    });
}

#[test]
fn semantically_invalid_graphs_get_422() {
    for_each_mode(|server| {
        // Syntactically valid JSON that the solver registry must refuse:
        // these are 422 (semantic), never 400 (reserved for non-JSON).
        let bodies = [
            // Not an object at all.
            r#"{"objective":"bandwidth","bound":10,"graph":42}"#,
            // Wrong field type inside the graph.
            r#"{"objective":"bandwidth","bound":10,"graph":{"node_weights":"x"}}"#,
            // Edge count mismatch for a chain.
            r#"{"objective":"bandwidth","bound":10,"graph":{"node_weights":[1,2],"edge_weights":[1,2,3]}}"#,
            // Tree with a cycle.
            r#"{"objective":"procmin","bound":10,"graph":{"node_weights":[1,1,1],"edges":[{"a":0,"b":1,"weight":1},{"a":1,"b":2,"weight":1},{"a":2,"b":0,"weight":1}]}}"#,
            // Edge endpoint out of range.
            r#"{"objective":"bottleneck","bound":10,"graph":{"node_weights":[1,1],"edges":[{"a":0,"b":9,"weight":1}]}}"#,
            // Negative weight.
            r#"{"objective":"bandwidth","bound":10,"graph":{"node_weights":[1,-2],"edge_weights":[1]}}"#,
            // Wrong graph shape for the objective (chain given to a tree solver).
            r#"{"objective":"procmin","bound":10,"graph":{"node_weights":[1,2],"edge_weights":[3]}}"#,
            // Field outside the objective's schema (typo protection).
            r#"{"objective":"bandwidth","buond":10,"bound":10,"graph":{"node_weights":[1,2],"edge_weights":[1]}}"#,
        ];
        for body in bodies {
            let (status, reply) = send_raw(server, &post_json(body)).expect("got a response");
            assert_eq!(status, 422, "body {body:?} → {reply}");
            assert!(
                reply.contains("\"code\""),
                "body {body:?} lacked a stable error code: {reply}"
            );
        }
        assert_alive(server);
    });
}

#[test]
fn oversized_body_is_413_before_upload() {
    for_each_mode(|server| {
        // max_body_bytes = 4096
        let raw =
            "POST /v1/partition HTTP/1.1\r\ncontent-length: 10000000\r\nconnection: close\r\n\r\n";
        // Note: no body bytes are actually sent — the server must reject
        // on the declared length alone.
        let (status, reply) = send_raw(server, raw.as_bytes()).expect("got a response");
        assert_eq!(status, 413, "{reply}");
        assert!(reply.contains("exceeds"), "{reply}");
        assert_alive(server);
    });
}

#[test]
fn truncated_body_times_out_without_wedging_the_server() {
    for_each_mode(|server| {
        // Declares 100 bytes but sends 10 and stalls; the read timeout
        // must reclaim the connection in either io mode.
        let raw = b"POST /v1/partition HTTP/1.1\r\ncontent-length: 100\r\n\r\n{\"a\": 1}";
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(raw).unwrap();
        // Don't close; just leave the request hanging.
        std::thread::sleep(Duration::from_millis(700)); // > read_timeout
        assert_alive(server);
        drop(stream);
    });
}

#[test]
fn garbage_protocol_lines_are_rejected() {
    for_each_mode(|server| {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET\r\n\r\n".as_slice(),
            b"GET /healthz\r\n\r\n".as_slice(),
            b"GET /healthz SPDY/9\r\n\r\n".as_slice(),
            b"GET /healthz HTTP/1.1\r\nbroken header line\r\n\r\n".as_slice(),
            b"POST /v1/partition HTTP/1.1\r\ncontent-length: banana\r\n\r\n".as_slice(),
            b"\xff\xfe\xfd\r\n\r\n".as_slice(),
        ] {
            // A silently dropped connection is also acceptable for byte
            // garbage; what matters is the server survives.
            if let Some((status, reply)) = send_raw(server, raw) {
                assert_eq!(status, 400, "input {raw:?} → {reply}");
            }
        }
        assert_alive(server);
    });
}

#[test]
fn enormous_header_section_is_bounded() {
    for_each_mode(|server| {
        // A single huge header must trip the head-size budget (16 KiB),
        // not buffer without limit.
        let mut raw = b"GET /healthz HTTP/1.1\r\nx-padding: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
        raw.extend_from_slice(b"\r\n\r\n");
        let reply = send_raw(server, &raw);
        if let Some((status, _)) = reply {
            assert_eq!(status, 400);
        }
        assert_alive(server);
    });
}

#[test]
fn resource_exhausting_simulate_scalars_get_422() {
    for_each_mode(|server| {
        // `items` schedules one event each and `processors` sizes
        // per-CPU allocations; a few bytes of JSON must not be able to
        // pin a worker or abort the process on allocation failure.
        let chain = r#"{"node_weights":[1,2,3],"edge_weights":[1,1]}"#;
        let bodies = [
            format!(r#"{{"bound":10,"items":10000000000,"graph":{chain}}}"#),
            format!(r#"{{"bound":10,"items":18446744073709551615,"graph":{chain}}}"#),
            format!(r#"{{"bound":10,"items":5,"processors":1000000000000000000,"graph":{chain}}}"#),
        ];
        for body in &bodies {
            let raw = format!(
                "POST /v1/simulate HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            );
            let (status, reply) = send_raw(server, raw.as_bytes()).expect("got a response");
            assert_eq!(status, 422, "body {body} → {reply}");
            assert!(
                reply.contains("\"code\"") && reply.contains("\"message\""),
                "{reply}"
            );
        }
        assert_alive(server);
    });
}

#[test]
fn chunked_transfer_encoding_is_rejected_not_smuggled() {
    for_each_mode(|server| {
        // Only Content-Length framing is supported. If the server parsed
        // this as a body-less request, the chunked payload would be read
        // as a second pipelined request — the smuggling primitive. It
        // must be a 400 and the connection must close without serving
        // the payload.
        let raw = b"POST /v1/partition HTTP/1.1\r\n\
            transfer-encoding: chunked\r\n\
            connection: keep-alive\r\n\r\n\
            1c\r\nGET /healthz HTTP/1.1\r\n\r\n\r\n0\r\n\r\n";
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(raw).expect("send");
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).expect("receive");
        let text = String::from_utf8_lossy(&reply);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        // Exactly one response: the smuggled GET must not have been
        // served.
        assert_eq!(text.matches("HTTP/1.1").count(), 1, "{text}");
        assert_alive(server);
    });
}

/// Killing one of two event loops is a capacity event, not an outage:
/// its `SO_REUSEPORT` listener closes, the kernel redistributes new
/// connections to the survivor, and every fresh request keeps
/// answering 200. Double-killing the same loop is a no-op.
#[cfg(target_os = "linux")]
#[test]
fn losing_one_loop_degrades_capacity_not_service() {
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        io: IoMode::Epoll,
        loops: 2,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    assert_eq!(server.net_loops(), 2, "expected a two-loop runtime");

    // Both loops serving: a burst of fresh connections lands on both
    // shards (kernel 4-tuple hashing) and every one must answer.
    let body = r#"{"objective":"bandwidth","bound":12,"graph":{"node_weights":[2,3,5,7],"edge_weights":[10,1,10]}}"#;
    for _ in 0..8 {
        let (status, reply) = send_raw(&server, &post_json(body)).expect("pre-kill response");
        assert_eq!(status, 200, "{reply}");
    }

    assert!(server.kill_loop(0), "first kill must take down loop 0");
    assert!(
        !server.kill_loop(0),
        "second kill of loop 0 must be a no-op"
    );

    // Every *new* connection now lands on the surviving listener; the
    // service stays correct, just smaller.
    for _ in 0..16 {
        let (status, reply) = send_raw(&server, &post_json(body)).expect("post-kill response");
        assert_eq!(status, 200, "degraded server failed a solve: {reply}");
    }
    assert_alive(&server);

    // Metrics still render (summation must tolerate the dead shard) and
    // the survivor keeps counting accepts.
    let (status, metrics) = send_raw(
        &server,
        b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n",
    )
    .expect("metrics response");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("tgp_accepted_connections_total"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn infeasible_bounds_get_422() {
    for_each_mode(|server| {
        let body = r#"{"objective":"bandwidth","bound":0,"graph":{"node_weights":[5,5],"edge_weights":[1]}}"#;
        let (status, reply) = send_raw(server, &post_json(body)).expect("got a response");
        assert_eq!(status, 422, "{reply}");
        assert!(
            reply.contains("\"code\":\"infeasible\"") && reply.contains("\"message\""),
            "{reply}"
        );
        assert_alive(server);
    });
}
