//! Facade crate for the `tgp` workspace — a reproduction of
//! *"Improved Algorithms for Partitioning Tree and Linear Task Graphs on
//! Shared Memory Architecture"* (Sibabrata Ray & Hong Jiang, ICDCS 1994).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`graph`] — task-graph substrate (paths, trees, cuts, generators),
//! * [`core`] — the paper's partitioning algorithms,
//! * [`baselines`] — prior-work algorithms (Bokhari, Nicol & O'Hallaron,
//!   Hansen & Lih),
//! * [`shmem`] — shared-memory multiprocessor simulator,
//! * [`dds`] — distributed discrete-event logic simulation application,
//! * [`realtime`] — real-time pipeline application,
//! * [`service`] — concurrent HTTP partition service with caching and
//!   metrics,
//! * [`obs`] — observability primitives (event journal, request
//!   traces, log-linear latency histograms).
//!
//! # Quickstart
//!
//! ```
//! use tgp::graph::{PathGraph, Weight};
//! use tgp::core::bandwidth;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chain = PathGraph::from_raw(&[4, 4, 4, 4, 4], &[9, 1, 9, 1])?;
//! let cut = bandwidth::min_bandwidth_cut(&chain, Weight::new(8))?;
//! assert!(chain.is_feasible_cut(&cut, Weight::new(8))?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use tgp_baselines as baselines;
pub use tgp_core as core;
pub use tgp_dds as dds;
pub use tgp_graph as graph;
pub use tgp_obs as obs;
pub use tgp_realtime as realtime;
pub use tgp_service as service;
pub use tgp_shmem as shmem;
